//! Graphviz (DOT) export of dependence graphs.

use std::fmt::Write as _;

use crate::graph::Ddg;

/// Options controlling [`to_dot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotOptions {
    /// Show the operation kind and latency inside each node label.
    pub show_latency: bool,
    /// Show the dependence distance on each edge (only non-zero distances
    /// are shown when this is false).
    pub show_all_distances: bool,
    /// Render loop-carried edges dashed.
    pub dash_loop_carried: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            show_latency: true,
            show_all_distances: false,
            dash_loop_carried: true,
        }
    }
}

/// Renders the graph in Graphviz DOT syntax (digraph).
///
/// The output is deterministic (nodes in id order, edges in insertion order)
/// so it can be snapshot-tested.
pub fn to_dot(ddg: &Ddg, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(ddg.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (id, node) in ddg.nodes() {
        let label = if options.show_latency {
            format!(
                "{}\\n{} λ={}",
                escape(node.name()),
                node.kind(),
                node.latency()
            )
        } else {
            escape(node.name()).to_string()
        };
        let _ = writeln!(out, "  {} [label=\"{}\"];", id, label);
    }
    for (_, e) in ddg.edges() {
        let mut attrs: Vec<String> = Vec::new();
        if e.distance() > 0 || options.show_all_distances {
            attrs.push(format!("label=\"{} δ={}\"", e.kind(), e.distance()));
        } else {
            attrs.push(format!("label=\"{}\"", e.kind()));
        }
        if options.dash_loop_carried && e.is_loop_carried() {
            attrs.push("style=dashed".to_string());
        }
        let _ = writeln!(
            out,
            "  {} -> {} [{}];",
            e.source(),
            e.target(),
            attrs.join(", ")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the graph with default options.
pub fn to_dot_default(ddg: &Ddg) -> String {
    to_dot(ddg, &DotOptions::default())
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn tiny() -> Ddg {
        let mut b = DdgBuilder::new("tiny \"loop\"");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = tiny();
        let dot = to_dot_default(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ["));
        assert!(dot.contains("n1 ["));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn loop_carried_edges_are_dashed_and_labelled() {
        let g = tiny();
        let dot = to_dot_default(&g);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("δ=1"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let g = tiny();
        let dot = to_dot_default(&g);
        assert!(dot.contains("tiny \\\"loop\\\""));
    }

    #[test]
    fn options_toggle_latency_display() {
        let g = tiny();
        let dot = to_dot(
            &g,
            &DotOptions {
                show_latency: false,
                show_all_distances: true,
                dash_loop_carried: false,
            },
        );
        assert!(!dot.contains("λ="));
        assert!(dot.contains("δ=0"));
        assert!(!dot.contains("dashed"));
    }

    #[test]
    fn output_is_deterministic() {
        let g = tiny();
        assert_eq!(to_dot_default(&g), to_dot_default(&g));
    }
}
