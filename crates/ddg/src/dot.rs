//! Graphviz (DOT) export and import of dependence graphs.
//!
//! Export ([`to_dot`]) renders a graph for visualisation; with the default
//! options it additionally embeds the full structure in `hrms_*` attributes
//! so the importer ([`from_dot`]) can rebuild a
//! [`crate::fingerprint::ddg_fingerprint`]-identical graph. The importer
//! also accepts plain third-party DOT digraphs (nodes default to latency-1
//! general operations, edges to intra-iteration flow dependences), which is
//! how external/real loops enter the `hrms` CLI. The format contract is
//! specified in `docs/FORMATS.md`.

use std::fmt::Write as _;

use crate::builder::DdgBuilder;
use crate::edge::DepKind;
use crate::graph::Ddg;
use crate::node::{NodeId, OpKind};
use crate::textfmt::{LoopSpans, ParseError, Span};

/// Options controlling [`to_dot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotOptions {
    /// Show the operation kind and latency inside each node label.
    pub show_latency: bool,
    /// Show the dependence distance on each edge (only non-zero distances
    /// are shown when this is false).
    pub show_all_distances: bool,
    /// Render loop-carried edges dashed.
    pub dash_loop_carried: bool,
    /// Embed the full graph structure in `hrms_*` attributes so the export
    /// re-imports losslessly through [`from_dot`]. Rendering tools ignore
    /// the extra attributes. Disable only for minimal presentation output.
    pub embed_metadata: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            show_latency: true,
            show_all_distances: false,
            dash_loop_carried: true,
            embed_metadata: true,
        }
    }
}

/// Renders the graph in Graphviz DOT syntax (digraph).
///
/// The output is deterministic (nodes in id order, edges in insertion order)
/// so it can be snapshot-tested, and with
/// [`DotOptions::embed_metadata`] (the default) it round-trips losslessly
/// through [`from_dot`].
pub fn to_dot(ddg: &Ddg, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(ddg.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    if options.embed_metadata {
        let _ = writeln!(
            out,
            "  graph [hrms_invariants={}, hrms_iterations={}];",
            ddg.num_invariants(),
            ddg.iteration_count()
        );
    }
    for (id, node) in ddg.nodes() {
        let label = if options.show_latency {
            format!(
                "{}\\n{} λ={}",
                escape(node.name()),
                node.kind(),
                node.latency()
            )
        } else {
            escape(node.name()).to_string()
        };
        let mut attrs = vec![format!("label=\"{label}\"")];
        if options.embed_metadata {
            attrs.push(format!("hrms_name=\"{}\"", escape(node.name())));
            attrs.push(format!("hrms_kind={}", node.kind().mnemonic()));
            attrs.push(format!("hrms_latency={}", node.latency()));
            if !node.defines_value() && node.kind().defines_value() {
                attrs.push("hrms_no_result=true".to_string());
            }
            if node.invariant_uses() > 0 {
                attrs.push(format!("hrms_invariant_uses={}", node.invariant_uses()));
            }
        }
        let _ = writeln!(out, "  {} [{}];", id, attrs.join(", "));
    }
    for (_, e) in ddg.edges() {
        let mut attrs: Vec<String> = Vec::new();
        if e.distance() > 0 || options.show_all_distances {
            attrs.push(format!("label=\"{} δ={}\"", e.kind(), e.distance()));
        } else {
            attrs.push(format!("label=\"{}\"", e.kind()));
        }
        if options.dash_loop_carried && e.is_loop_carried() {
            attrs.push("style=dashed".to_string());
        }
        if options.embed_metadata {
            attrs.push(format!("hrms_kind={}", e.kind().label()));
            attrs.push(format!("hrms_distance={}", e.distance()));
        }
        let _ = writeln!(
            out,
            "  {} -> {} [{}];",
            e.source(),
            e.target(),
            attrs.join(", ")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the graph with default options.
pub fn to_dot_default(ddg: &Ddg) -> String {
    to_dot(ddg, &DotOptions::default())
}

/// Escapes a string for inclusion in a double-quoted DOT attribute value.
///
/// Backslashes are escaped **before** quotes (the pre-fix exporter only
/// escaped quotes, so a name ending in `\` produced `\"` — an escaped quote
/// — and the output failed to re-parse). Newlines and tabs become `\n` /
/// `\t`, which [`from_dot`] folds back.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

/// One token of a DOT input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Bare identifier or number.
    Id(String),
    /// Double-quoted string (unescaped).
    Str(String),
    /// `{`, `}`, `[`, `]`, `=`, `;`, `,`
    Punct(char),
    /// `->`
    Arrow,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Id(s) => format!("`{s}`"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::Punct(c) => format!("`{c}`"),
            Tok::Arrow => "`->`".to_string(),
        }
    }

    /// The textual value of an identifier or string token.
    fn value(&self) -> Option<&str> {
        match self {
            Tok::Id(s) | Tok::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Tracks the lexer's position: 1-based line and character column, byte
/// offset into the whole input.
#[derive(Debug, Clone, Copy)]
struct Pos {
    line: usize,
    col: usize,
    offset: usize,
}

impl Pos {
    /// The span from `self` (inclusive) to `end` (exclusive), clamped to a
    /// single line for rendering (multi-line strings point at their first
    /// line).
    fn until(self, end: Pos) -> Span {
        let len = if end.line == self.line {
            end.col.saturating_sub(self.col)
        } else {
            1
        };
        Span::new(self.line, self.col, self.offset, len.max(1))
    }
}

/// The input's lines, for attaching source excerpts to errors.
struct Src<'a> {
    lines: Vec<&'a str>,
}

impl Src<'_> {
    fn err(&self, span: Span, message: impl Into<String>) -> ParseError {
        let line = self
            .lines
            .get(span.line.wrapping_sub(1))
            .copied()
            .unwrap_or("");
        ParseError::at(span, line, message)
    }
}

/// Tokenizes the supported DOT subset, tracking line/column/offset spans.
fn lex<'a>(input: &'a str, src: &Src<'a>) -> Result<Vec<(Tok, Span)>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = input.char_indices().peekable();
    let mut pos = Pos {
        line: 1,
        col: 1,
        offset: 0,
    };
    // Consumes one char, updating the position.
    macro_rules! bump {
        () => {{
            let nxt = chars.next();
            if let Some((i, c)) = nxt {
                pos.offset = i + c.len_utf8();
                if c == '\n' {
                    pos.line += 1;
                    pos.col = 1;
                } else {
                    pos.col += 1;
                }
            }
            nxt.map(|(_, c)| c)
        }};
    }
    while let Some(&(_, c)) = chars.peek() {
        let start = pos;
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '#' => {
                // Shell-style comment (also covers C preprocessor lines).
                while let Some(&(_, c)) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '/' => {
                bump!();
                match chars.peek().map(|&(_, c)| c) {
                    Some('/') => {
                        while let Some(&(_, c)) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut prev = ' ';
                        loop {
                            match bump!() {
                                None => {
                                    return Err(src.err(start.until(pos), "unterminated /* comment"))
                                }
                                Some('/') if prev == '*' => break,
                                Some(c) => prev = c,
                            }
                        }
                    }
                    _ => return Err(src.err(start.until(pos), "unexpected `/`")),
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None => return Err(src.err(start.until(pos), "unterminated string")),
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            // DOT treats unknown escapes literally; keep
                            // both characters so foreign labels survive.
                            Some(other) => {
                                s.push('\\');
                                s.push(other);
                            }
                            None => return Err(src.err(start.until(pos), "unterminated string")),
                        },
                        Some(c) => s.push(c),
                    }
                }
                toks.push((Tok::Str(s), start.until(pos)));
            }
            '{' | '}' | '[' | ']' | '=' | ';' | ',' => {
                bump!();
                toks.push((Tok::Punct(c), start.until(pos)));
            }
            '-' => {
                bump!();
                match bump!() {
                    Some('>') => toks.push((Tok::Arrow, start.until(pos))),
                    Some('-') => {
                        return Err(src.err(
                            start.until(pos),
                            "undirected edges (`--`) are not dependence edges; use a digraph",
                        ))
                    }
                    _ => return Err(src.err(start.until(pos), "unexpected `-`")),
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let mut s = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Id(s), start.until(pos)));
            }
            other => {
                bump!();
                return Err(src.err(start.until(pos), format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(toks)
}

/// Key/value attribute list parsed from `[...]`; the span points at the
/// attribute's value token.
type Attrs = Vec<(String, String, Span)>;

fn find_attr<'a>(attrs: &'a Attrs, key: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|(k, _, _)| k == key)
        .map(|(_, v, _)| v.as_str())
}

fn find_attr_span<'a>(attrs: &'a Attrs, key: &str) -> Option<(&'a str, Span)> {
    attrs
        .iter()
        .find(|(k, _, _)| k == key)
        .map(|(_, v, s)| (v.as_str(), *s))
}

/// Cursor over the token stream.
struct Cursor<'a> {
    toks: Vec<(Tok, Span)>,
    pos: usize,
    src: Src<'a>,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |&(_, s)| s.line)
    }

    /// Span of the current token (or of the last token at end of input).
    fn span(&self) -> Span {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(Span::new(0, 1, 0, 1), |&(_, s)| s)
    }

    fn err(&self, span: Span, message: impl Into<String>) -> ParseError {
        self.src.err(span, message)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        let span = self.span();
        let line = self.line();
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            Some(other) => {
                Err(self.err(span, format!("expected `{c}`, found {}", other.describe())))
            }
            None => Err(ParseError::new(
                line,
                format!("expected `{c}`, found end of input"),
            )),
        }
    }

    /// Parses an optional `[k=v, ...]` attribute list (possibly repeated,
    /// as DOT allows `[a=1][b=2]`).
    fn attrs(&mut self) -> Result<Attrs, ParseError> {
        let mut attrs = Vec::new();
        while self.eat_punct('[') {
            loop {
                if self.eat_punct(']') {
                    break;
                }
                let span = self.span();
                let line = self.line();
                let key = match self.next() {
                    Some(t) => t
                        .value()
                        .map(str::to_string)
                        .ok_or_else(|| self.err(span, "expected an attribute name"))?,
                    None => return Err(ParseError::new(line, "unterminated attribute list")),
                };
                self.expect_punct('=')?;
                let vspan = self.span();
                let line = self.line();
                let value = match self.next() {
                    Some(t) => t
                        .value()
                        .map(str::to_string)
                        .ok_or_else(|| self.err(vspan, "expected an attribute value"))?,
                    None => return Err(ParseError::new(line, "unterminated attribute list")),
                };
                attrs.push((key, value, vspan));
                // Separators between attributes are optional in DOT.
                let _ = self.eat_punct(',') || self.eat_punct(';');
            }
        }
        Ok(attrs)
    }
}

/// Pending node data gathered during the parse.
struct PendingNode {
    name: String,
    kind: OpKind,
    latency: u32,
    no_result: bool,
    invariant_uses: u32,
    /// Span of the statement that introduced the node.
    span: Span,
}

/// Parses the node-defining attributes (falling back to the label when the
/// `hrms_*` metadata is absent).
fn node_from_attrs(
    dot_id: &str,
    attrs: &Attrs,
    stmt_span: Span,
    src: &Src<'_>,
) -> Result<PendingNode, ParseError> {
    let label = find_attr(attrs, "label");
    // `label="name\nkind λ=N"` — the exporter's presentational encoding.
    let (label_name, label_kind, label_latency) = match label {
        Some(l) => {
            let mut parts = l.splitn(2, '\n');
            let name = parts.next().unwrap_or("");
            let mut kind = None;
            let mut latency = None;
            if let Some(rest) = parts.next() {
                for word in rest.split_whitespace() {
                    if let Some(v) = word.strip_prefix("λ=") {
                        latency = v.parse::<u32>().ok();
                    } else if kind.is_none() {
                        kind = OpKind::from_mnemonic(word);
                    }
                }
            }
            (
                if name.is_empty() {
                    None
                } else {
                    Some(name.to_string())
                },
                kind,
                latency,
            )
        }
        None => (None, None, None),
    };
    let name = find_attr(attrs, "hrms_name")
        .map(str::to_string)
        .or(label_name)
        .unwrap_or_else(|| dot_id.to_string());
    let kind = match find_attr_span(attrs, "hrms_kind") {
        Some((k, span)) => OpKind::from_mnemonic(k)
            .ok_or_else(|| src.err(span, format!("unknown operation kind `{k}`")))?,
        None => label_kind.unwrap_or(OpKind::Other),
    };
    let latency = match find_attr_span(attrs, "hrms_latency") {
        Some((v, span)) => v
            .parse()
            .map_err(|_| src.err(span, format!("invalid hrms_latency `{v}`")))?,
        None => label_latency.unwrap_or(1),
    };
    let no_result = find_attr(attrs, "hrms_no_result") == Some("true");
    let invariant_uses = match find_attr_span(attrs, "hrms_invariant_uses") {
        Some((v, span)) => v
            .parse()
            .map_err(|_| src.err(span, format!("invalid hrms_invariant_uses `{v}`")))?,
        None => 0,
    };
    Ok(PendingNode {
        name,
        kind,
        latency,
        no_result,
        invariant_uses,
        span: stmt_span,
    })
}

/// Parses a DOT digraph into a dependence graph, also returning the source
/// span of every node- and edge-introducing statement (see
/// [`crate::textfmt::LoopSpans`]; nodes first referenced inside an edge
/// statement get that statement's span).
///
/// # Errors
///
/// Same as [`from_dot`].
pub fn from_dot_with_spans(input: &str) -> Result<(Ddg, LoopSpans), ParseError> {
    let src = Src {
        lines: input.lines().collect(),
    };
    let toks = lex(input, &src)?;
    let mut cur = Cursor { toks, pos: 0, src };

    // Header: [strict] digraph [name] {
    let header_span = cur.span();
    let line = cur.line();
    match cur.next() {
        Some(Tok::Id(id)) if id == "strict" => match cur.next() {
            Some(Tok::Id(id)) if id == "digraph" => {}
            _ => return Err(cur.err(header_span, "expected `digraph`")),
        },
        Some(Tok::Id(id)) if id == "digraph" => {}
        Some(Tok::Id(id)) if id == "graph" => {
            return Err(cur.err(
                header_span,
                "undirected `graph` inputs are not dependence graphs; use `digraph`",
            ))
        }
        Some(other) => {
            return Err(cur.err(
                header_span,
                format!("expected `digraph`, found {}", other.describe()),
            ))
        }
        None => {
            return Err(ParseError::new(
                line,
                "expected `digraph`, found end of input",
            ))
        }
    }
    let name = match cur.peek() {
        Some(Tok::Punct('{')) => "imported".to_string(),
        _ => {
            let span = cur.span();
            let line = cur.line();
            match cur.next() {
                Some(t) => t
                    .value()
                    .map(str::to_string)
                    .ok_or_else(|| cur.err(span, "expected a graph name or `{`"))?,
                None => {
                    return Err(ParseError::new(line, "expected a graph name or `{`"));
                }
            }
        }
    };
    cur.expect_punct('{')?;

    let mut nodes: Vec<PendingNode> = Vec::new();
    let mut ids: Vec<(String, usize)> = Vec::new(); // dot id -> node index
    let mut edges: Vec<(usize, usize, DepKind, u32, Span)> = Vec::new();
    let mut invariants: Option<u32> = None;
    let mut iterations: Option<u64> = None;

    // Creates-or-finds the node for a DOT id referenced by an edge.
    fn intern(
        ids: &mut Vec<(String, usize)>,
        nodes: &mut Vec<PendingNode>,
        id: &str,
        span: Span,
    ) -> usize {
        if let Some(&(_, i)) = ids.iter().find(|(n, _)| n == id) {
            return i;
        }
        let i = nodes.len();
        nodes.push(PendingNode {
            name: id.to_string(),
            kind: OpKind::Other,
            latency: 1,
            no_result: false,
            invariant_uses: 0,
            span,
        });
        ids.push((id.to_string(), i));
        i
    }

    loop {
        let stmt_span = cur.span();
        let line = cur.line();
        let tok = cur
            .next()
            .ok_or_else(|| ParseError::new(line, "unterminated digraph (missing `}`)"))?;
        match tok {
            Tok::Punct('}') => break,
            Tok::Punct(';') => continue,
            Tok::Id(ref id) if id == "subgraph" => {
                return Err(cur.err(stmt_span, "subgraphs are not supported"));
            }
            Tok::Id(ref id)
                if (id == "graph" || id == "node" || id == "edge")
                    && cur.peek() == Some(&Tok::Punct('[')) =>
            {
                let attrs = cur.attrs()?;
                if id == "graph" {
                    if let Some((v, span)) = find_attr_span(&attrs, "hrms_invariants") {
                        invariants = Some(v.parse().map_err(|_| {
                            cur.err(span, format!("invalid hrms_invariants `{v}`"))
                        })?);
                    }
                    if let Some((v, span)) = find_attr_span(&attrs, "hrms_iterations") {
                        iterations = Some(v.parse().map_err(|_| {
                            cur.err(span, format!("invalid hrms_iterations `{v}`"))
                        })?);
                    }
                }
                // Other default attributes (shape, fontname, ...) are
                // presentational; ignore them.
            }
            Tok::Id(_) | Tok::Str(_) => {
                let dot_id = tok.value().expect("id or string").to_string();
                if cur.eat_punct('=') {
                    // Top-level `key=value;` graph attribute (rankdir=TB).
                    let span = cur.span();
                    cur.next()
                        .and_then(|t| t.value().map(str::to_string))
                        .ok_or_else(|| cur.err(span, "expected an attribute value"))?;
                    continue;
                }
                if cur.peek() == Some(&Tok::Arrow) {
                    // Edge statement (possibly a chain a -> b -> c).
                    let mut chain = vec![intern(&mut ids, &mut nodes, &dot_id, stmt_span)];
                    while cur.peek() == Some(&Tok::Arrow) {
                        cur.next();
                        let span = cur.span();
                        let target = cur
                            .next()
                            .and_then(|t| t.value().map(str::to_string))
                            .ok_or_else(|| cur.err(span, "expected an edge target"))?;
                        chain.push(intern(&mut ids, &mut nodes, &target, span));
                    }
                    let attrs = cur.attrs()?;
                    let kind = match find_attr_span(&attrs, "hrms_kind") {
                        Some((k, span)) => DepKind::from_label(k).ok_or_else(|| {
                            cur.err(span, format!("unknown dependence kind `{k}`"))
                        })?,
                        None => find_attr(&attrs, "label")
                            .and_then(|l| l.split_whitespace().next().and_then(DepKind::from_label))
                            .unwrap_or(DepKind::RegFlow),
                    };
                    let distance = match find_attr_span(&attrs, "hrms_distance") {
                        Some((v, span)) => v
                            .parse()
                            .map_err(|_| cur.err(span, format!("invalid hrms_distance `{v}`")))?,
                        None => find_attr(&attrs, "label")
                            .and_then(|l| {
                                l.split_whitespace()
                                    .find_map(|w| w.strip_prefix("δ="))
                                    .and_then(|v| v.parse().ok())
                            })
                            .unwrap_or(0),
                    };
                    for pair in chain.windows(2) {
                        edges.push((pair[0], pair[1], kind, distance, stmt_span));
                    }
                } else {
                    // Node statement.
                    let attrs = cur.attrs()?;
                    let pending = node_from_attrs(&dot_id, &attrs, stmt_span, &cur.src)?;
                    let idx = intern(&mut ids, &mut nodes, &dot_id, stmt_span);
                    nodes[idx] = pending;
                }
            }
            other => {
                return Err(cur.err(stmt_span, format!("unexpected {}", other.describe())));
            }
        }
    }
    if let Some(tok) = cur.next() {
        return Err(ParseError::new(
            cur.line(),
            format!("trailing {} after closing `}}`", tok.describe()),
        ));
    }

    let mut b = DdgBuilder::new(name);
    let mut node_ids: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut node_spans: Vec<Span> = Vec::with_capacity(nodes.len());
    for n in &nodes {
        let id = if n.no_result {
            b.node_no_result(n.name.clone(), n.kind, n.latency)
        } else {
            b.node(n.name.clone(), n.kind, n.latency)
        };
        if n.invariant_uses > 0 {
            b.node_invariant_uses(id, n.invariant_uses);
        }
        node_ids.push(id);
        node_spans.push(n.span);
    }
    let mut edge_spans: Vec<Span> = Vec::with_capacity(edges.len());
    for &(s, t, kind, dist, span) in &edges {
        b.edge(node_ids[s], node_ids[t], kind, dist)
            .map_err(|e| cur.src.err(span, format!("invalid edge: {e}")))?;
        edge_spans.push(span);
    }
    if let Some(inv) = invariants {
        b.invariants(inv);
    }
    if let Some(it) = iterations {
        b.iteration_count(it);
    }
    let ddg = b
        .build()
        .map_err(|e| ParseError::new(0, format!("invalid graph: {e}")))?;
    Ok((
        ddg,
        LoopSpans {
            header: header_span,
            nodes: node_spans,
            edges: edge_spans,
        },
    ))
}

/// Parses a DOT digraph into a dependence graph.
///
/// Accepts the output of [`to_dot`] (lossless with the default options:
/// re-importing yields a fingerprint-identical graph) and a pragmatic
/// subset of general DOT: `digraph` with node statements, edge statements,
/// attribute lists, default `graph`/`node`/`edge` attribute statements
/// (ignored except for `hrms_*` graph metadata) and comments. Nodes that
/// first appear inside an edge statement are created with defaults
/// ([`OpKind::Other`], latency 1), so plain `a -> b; b -> c;` graphs import
/// as schedulable loops.
///
/// # Errors
///
/// Returns a [`ParseError`] — with a 1-based line number, and column plus
/// source excerpt where the error is tied to a token — on lexical or
/// syntactic errors, unsupported constructs (`graph`/`subgraph`, `--`
/// edges), invalid `hrms_*` metadata, or when the resulting graph fails
/// [`DdgBuilder::build`] validation.
pub fn from_dot(input: &str) -> Result<Ddg, ParseError> {
    from_dot_with_spans(input).map(|(ddg, _)| ddg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ddg_fingerprint;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn tiny() -> Ddg {
        let mut b = DdgBuilder::new("tiny \"loop\"");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = tiny();
        let dot = to_dot_default(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ["));
        assert!(dot.contains("n1 ["));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn loop_carried_edges_are_dashed_and_labelled() {
        let g = tiny();
        let dot = to_dot_default(&g);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("δ=1"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let g = tiny();
        let dot = to_dot_default(&g);
        assert!(dot.contains("tiny \\\"loop\\\""));
    }

    #[test]
    fn backslashes_are_escaped_before_quotes() {
        // The pre-fix exporter turned a trailing `\` into `\"` (an escaped
        // quote), producing unparseable DOT.
        let mut b = DdgBuilder::new("ends with backslash \\");
        b.node("weird\\name", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        let dot = to_dot_default(&g);
        assert!(dot.contains("ends with backslash \\\\"));
        assert!(dot.contains("weird\\\\name"));
        let back = from_dot(&dot).unwrap();
        assert_eq!(back.name(), "ends with backslash \\");
        assert_eq!(back.node(NodeId(0)).name(), "weird\\name");
    }

    #[test]
    fn options_toggle_latency_display() {
        let g = tiny();
        let dot = to_dot(
            &g,
            &DotOptions {
                show_latency: false,
                show_all_distances: true,
                dash_loop_carried: false,
                embed_metadata: false,
            },
        );
        assert!(!dot.contains("λ="));
        assert!(dot.contains("δ=0"));
        assert!(!dot.contains("dashed"));
        assert!(!dot.contains("hrms_"));
    }

    #[test]
    fn output_is_deterministic() {
        let g = tiny();
        assert_eq!(to_dot_default(&g), to_dot_default(&g));
    }

    #[test]
    fn default_export_reimports_fingerprint_identical() {
        let mut b = DdgBuilder::new("full house");
        let a = b.node("ld", OpKind::Load, 2);
        let c = b.node("acc", OpKind::FpAdd, 1);
        let s = b.node("st", OpKind::Store, 1);
        let n = b.node_no_result("cmp", OpKind::IntAlu, 1);
        b.node_invariant_uses(c, 2);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        b.edge(c, s, DepKind::RegFlow, 0).unwrap();
        b.edge(s, a, DepKind::Memory, 2).unwrap();
        b.edge(n, s, DepKind::Control, 0).unwrap();
        b.invariants(3).iteration_count(777);
        let g = b.build().unwrap();

        let back = from_dot(&to_dot_default(&g)).unwrap();
        assert_eq!(back, g);
        assert_eq!(ddg_fingerprint(&back), ddg_fingerprint(&g));
    }

    #[test]
    fn label_fallback_reconstructs_kind_latency_and_distance() {
        // embed_metadata off, but labels carry kind/latency/distance.
        let g = tiny();
        let dot = to_dot(
            &g,
            &DotOptions {
                show_latency: true,
                show_all_distances: true,
                dash_loop_carried: true,
                embed_metadata: false,
            },
        );
        let back = from_dot(&dot).unwrap();
        assert_eq!(back.node(NodeId(0)).kind(), OpKind::Load);
        assert_eq!(back.node(NodeId(0)).latency(), 2);
        assert_eq!(back.node(NodeId(0)).name(), "a");
        let (_, e) = back.edges().nth(1).unwrap();
        assert_eq!(e.distance(), 1);
        assert_eq!(e.kind(), DepKind::RegFlow);
    }

    #[test]
    fn plain_third_party_digraphs_import_with_defaults() {
        let dot = "digraph { a -> b -> c; b -> d [label=\"x\"]; }";
        let g = from_dot(dot).unwrap();
        assert_eq!(g.name(), "imported");
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.node(NodeId(0)).name(), "a");
        assert_eq!(g.node(NodeId(0)).kind(), OpKind::Other);
        assert_eq!(g.node(NodeId(0)).latency(), 1);
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.kind(), DepKind::RegFlow);
        assert_eq!(e.distance(), 0);
    }

    #[test]
    fn comments_and_strict_are_accepted() {
        let dot = "// C++ comment\nstrict digraph g { /* block\ncomment */ a; # shell\n a -> a [hrms_distance=1]; }";
        let g = from_dot(dot).unwrap();
        assert_eq!(g.num_nodes(), 1);
        let (_, e) = g.edges().next().unwrap();
        assert!(e.is_self_loop());
        assert_eq!(e.distance(), 1);
    }

    #[test]
    fn import_errors_are_descriptive() {
        for (input, needle) in [
            ("graph g { a -- b; }", "digraph"),
            ("digraph g { a -- b; }", "undirected"),
            ("digraph g { subgraph s { a; } }", "subgraph"),
            ("digraph g { a -> ; }", "edge target"),
            ("digraph g { a [hrms_kind=zzz]; }", "operation kind"),
            ("digraph g { a [hrms_latency=xx]; }", "hrms_latency"),
            ("digraph g { a ", "missing `}`"),
            ("digraph g { }", "no operations"),
            ("not dot at all", "digraph"),
        ] {
            let err = from_dot(input).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{input:?}: expected {needle:?} in `{err}`"
            );
        }
    }

    #[test]
    fn import_errors_carry_spans_and_excerpts() {
        let input = "digraph g {\n  a [hrms_kind=zzz];\n}\n";
        let err = from_dot(input).unwrap_err();
        let span = err.span.expect("metadata errors carry spans");
        assert_eq!((span.line, span.col), (2, 16));
        assert_eq!(&input[span.offset..span.offset + span.len], "zzz");
        assert!(err.to_string().contains("|  "), "excerpt rendered: {err}");
    }

    #[test]
    fn with_spans_tracks_node_and_edge_statements() {
        let input = "digraph g {\n  a [hrms_kind=load, hrms_latency=2];\n  a -> b;\n}\n";
        let (g, spans) = from_dot_with_spans(input).unwrap();
        assert_eq!(spans.header.line, 1);
        assert_eq!(spans.nodes.len(), g.num_nodes());
        assert_eq!(spans.edges.len(), g.num_edges());
        assert_eq!(spans.nodes[0].line, 2, "node a declared on line 2");
        assert_eq!(spans.nodes[1].line, 3, "node b interned by the edge");
        assert_eq!(spans.edges[0].line, 3);
    }

    #[test]
    fn graph_metadata_round_trips() {
        let mut b = DdgBuilder::new("meta");
        b.node("x", OpKind::FpMul, 2);
        b.invariants(4).iteration_count(9999);
        let g = b.build().unwrap();
        let back = from_dot(&to_dot_default(&g)).unwrap();
        assert_eq!(back.num_invariants(), 4);
        assert_eq!(back.iteration_count(), 9999);
    }
}
