//! Operations (graph nodes) and their classification.

use std::fmt;

/// Identifier of an operation inside one [`crate::Ddg`].
///
/// Node ids are dense indices assigned in insertion order, which is also the
/// *program order* of the loop body (the paper's pre-ordering step uses "the
/// first node of the graph", i.e. the operation that appears first in program
/// order, as the default initial hypernode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Classification of an operation, used to map it onto a functional unit of
/// the machine model and to pick its default latency.
///
/// The set mirrors the operation mix of the paper's two experimental
/// machines: floating-point add/sub, multiply, divide, square root,
/// loads/stores, plus integer/address arithmetic, copies and a generic
/// "other" class for anything that only occupies an issue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum OpKind {
    /// Floating-point addition or subtraction.
    FpAdd,
    /// Floating-point multiplication.
    FpMul,
    /// Floating-point division.
    FpDiv,
    /// Square root.
    FpSqrt,
    /// Memory load.
    Load,
    /// Memory store. Stores do not define a loop-variant value.
    Store,
    /// Integer / address arithmetic.
    IntAlu,
    /// Register-to-register copy (used by spill/allocation passes).
    Copy,
    /// Anything else that occupies an issue slot on a general-purpose unit.
    Other,
}

impl OpKind {
    /// Whether operations of this kind define a loop-variant value that must
    /// be kept in a register until its last use.
    ///
    /// Stores write to memory and define no register value; every other kind
    /// does. (Branches and compare-and-branch pseudo-operations are folded
    /// into [`OpKind::Other`] by the workload generators and marked
    /// value-less explicitly via [`crate::DdgBuilder::node_no_result`].)
    #[inline]
    pub fn defines_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Whether this is a memory operation (load or store).
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// A short mnemonic used in DOT output and debug prints.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::FpAdd => "fadd",
            OpKind::FpMul => "fmul",
            OpKind::FpDiv => "fdiv",
            OpKind::FpSqrt => "fsqrt",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::IntAlu => "ialu",
            OpKind::Copy => "copy",
            OpKind::Other => "op",
        }
    }

    /// Parses a mnemonic produced by [`OpKind::mnemonic`] back into the
    /// kind. This is the inverse used by the on-disk loop and machine
    /// formats (`docs/FORMATS.md`).
    pub fn from_mnemonic(s: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.mnemonic() == s)
    }

    /// All operation kinds, in a fixed order (useful for iteration in
    /// machine descriptions and statistics).
    pub const ALL: [OpKind; 9] = [
        OpKind::FpAdd,
        OpKind::FpMul,
        OpKind::FpDiv,
        OpKind::FpSqrt,
        OpKind::Load,
        OpKind::Store,
        OpKind::IntAlu,
        OpKind::Copy,
        OpKind::Other,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    /// Human-readable, unique name ("A", "load_x", ...). The paper's worked
    /// examples are addressed by these names in the test-suite.
    name: String,
    /// Operation class, used for functional-unit mapping.
    kind: OpKind,
    /// Latency `λ(u)` in cycles (strictly positive).
    latency: u32,
    /// Whether the operation defines a loop-variant value. Defaults to
    /// `kind.defines_value()` but can be overridden (e.g. a compare feeding
    /// a branch that is not register-allocated).
    defines_value: bool,
    /// Number of loop-invariant operands read by this operation. Invariants
    /// occupy one register each for the whole loop, irrespective of the
    /// schedule; they only matter for the combined register-pressure figures
    /// (Fig. 13/14 of the paper).
    invariant_uses: u32,
}

impl Node {
    /// Creates a new node description.
    pub(crate) fn new(name: String, kind: OpKind, latency: u32) -> Self {
        Node {
            name,
            kind,
            latency,
            defines_value: kind.defines_value(),
            invariant_uses: 0,
        }
    }

    /// The operation's unique name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation class.
    #[inline]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The latency `λ(u)` in cycles.
    #[inline]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Whether the operation defines a loop-variant value.
    #[inline]
    pub fn defines_value(&self) -> bool {
        self.defines_value
    }

    /// Number of loop-invariant operands this operation reads.
    #[inline]
    pub fn invariant_uses(&self) -> u32 {
        self.invariant_uses
    }

    pub(crate) fn set_defines_value(&mut self, defines: bool) {
        self.defines_value = defines;
    }

    pub(crate) fn set_invariant_uses(&mut self, uses: u32) {
        self.invariant_uses = uses;
    }

    pub(crate) fn set_latency(&mut self, latency: u32) {
        self.latency = latency;
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, λ={})", self.name, self.kind, self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_display_is_compact() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn stores_do_not_define_values() {
        assert!(!OpKind::Store.defines_value());
        for kind in OpKind::ALL {
            if kind != OpKind::Store {
                assert!(kind.defines_value(), "{kind:?} should define a value");
            }
        }
    }

    #[test]
    fn memory_classification() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::FpAdd.is_memory());
        assert!(!OpKind::Copy.is_memory());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for kind in OpKind::ALL {
            assert!(
                seen.insert(kind.mnemonic()),
                "duplicate mnemonic for {kind:?}"
            );
        }
    }

    #[test]
    fn node_accessors() {
        let mut n = Node::new("A".to_string(), OpKind::FpMul, 2);
        assert_eq!(n.name(), "A");
        assert_eq!(n.kind(), OpKind::FpMul);
        assert_eq!(n.latency(), 2);
        assert!(n.defines_value());
        assert_eq!(n.invariant_uses(), 0);
        n.set_defines_value(false);
        n.set_invariant_uses(2);
        n.set_latency(4);
        assert!(!n.defines_value());
        assert_eq!(n.invariant_uses(), 2);
        assert_eq!(n.latency(), 4);
    }

    #[test]
    fn display_contains_name_and_latency() {
        let n = Node::new("mul3".to_string(), OpKind::FpMul, 2);
        let s = n.to_string();
        assert!(s.contains("mul3"));
        assert!(s.contains("λ=2"));
    }
}
