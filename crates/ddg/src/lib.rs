//! Data-dependence-graph (DDG) substrate for modulo scheduling.
//!
//! This crate provides the loop representation used throughout the HRMS
//! reproduction: a *data-dependence graph* `G = (V, E, δ, λ)` in the notation
//! of Llosa et al. (MICRO-28, 1995), where
//!
//! * each vertex `v ∈ V` is one operation of an innermost-loop body,
//! * each edge `(u, v) ∈ E` is a dependence (register, memory or control),
//! * `δ(u,v) ≥ 0` is the dependence *distance* in iterations, and
//! * `λ(u) ≥ 1` is the *latency* of the operation in cycles.
//!
//! On top of the graph itself the crate implements every graph routine the
//! schedulers rely on:
//!
//! * weakly connected components ([`Ddg::connected_components`]),
//! * strongly connected components ([`scc`]),
//! * enumeration-free recurrence subgraphs derived from the SCCs and their
//!   backward-edge sets ([`recurrence`]) — the default recurrence path,
//! * the exact per-node maximum cycle-ratio analysis ([`cycle_ratio`]):
//!   for every node, the `RecMII` of the most critical recurrence circuit
//!   through it, which ranks interleaved recurrences exactly,
//! * enumeration of elementary circuits and their grouping into *recurrence
//!   subgraphs* ([`circuits`]) — kept as the differential oracle for the
//!   SCC-derived analysis (the `verify-recurrence` feature cross-checks the
//!   two on every analysed loop),
//! * the `Search_All_Paths` routine of the paper ([`paths`]),
//! * ASAP / PALA topological orders and latency-weighted levels ([`topo`]),
//! * the shared per-loop analysis cache ([`analysis`]): one Tarjan run,
//!   backward edges, dependence arcs with precomputed latencies and the
//!   exact RecMII, computed once per loop and reused by every phase,
//! * Graphviz export ([`dot`]).
//!
//! # Example
//!
//! ```
//! use hrms_ddg::{DdgBuilder, OpKind, DepKind};
//!
//! # fn main() -> Result<(), hrms_ddg::DdgError> {
//! let mut b = DdgBuilder::new("dot_product");
//! let load_a = b.node("load_a", OpKind::Load, 2);
//! let load_b = b.node("load_b", OpKind::Load, 2);
//! let mul = b.node("mul", OpKind::FpMul, 2);
//! let acc = b.node("acc", OpKind::FpAdd, 1);
//! b.edge(load_a, mul, DepKind::RegFlow, 0)?;
//! b.edge(load_b, mul, DepKind::RegFlow, 0)?;
//! b.edge(mul, acc, DepKind::RegFlow, 0)?;
//! // the accumulator is a loop-carried dependence of distance 1
//! b.edge(acc, acc, DepKind::RegFlow, 1)?;
//! let ddg = b.build()?;
//! assert_eq!(ddg.num_nodes(), 4);
//! assert!(ddg.has_recurrence());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod circuits;
pub mod cycle_ratio;
pub mod dense;
pub mod dot;
pub mod edge;
pub mod error;
pub mod fingerprint;
pub mod graph;
pub mod instrument;
pub mod node;
pub mod paths;
pub mod recurrence;
pub mod scc;
pub mod textfmt;
pub mod topo;

pub use analysis::{
    dependence_latency, DepArc, DepEdge, IncrementalStarts, LoopAnalysis, LoopCore, MachineView,
    PerIiStarts, PlacementCsr,
};
pub use builder::DdgBuilder;
pub use circuits::{Circuit, RecurrenceInfo, RecurrenceSubgraph};
pub use cycle_ratio::CycleRatios;
pub use dense::{Csr, DenseAdjacency, NodeSet};
pub use edge::{DepKind, Edge, EdgeId};
pub use error::DdgError;
pub use fingerprint::{cache_key, ddg_fingerprint, format_digest, Fnv64};
pub use graph::{chain, Ddg, DdgSummary, GraphView};
pub use node::{Node, NodeId, OpKind};
pub use paths::search_all_paths;
pub use recurrence::{CrossCheckReport, RecurrenceGroup, RecurrenceGroupKind, RecurrenceGroups};
pub use textfmt::{
    parse_loop, parse_loops, parse_loops_with_spans, write_loop, write_loops, LoopSpans,
    ParseError, Span,
};
pub use topo::{sort_asap, sort_pala, CycleError, Direction, TopoLevels};
