//! Branch-and-bound scheduler that minimises buffer requirements — the
//! stand-in for the SPILP integer-linear-programming formulation of
//! Govindarajan, Altman and Gao.
//!
//! SPILP's role in the paper's evaluation (Table 1) is to provide the
//! *optimal* resource-constrained schedule with minimal buffer requirements,
//! at a compilation-time cost several orders of magnitude above the
//! heuristics. Without an ILP solver available offline, this module plays
//! the same role with an exhaustive branch-and-bound search over modulo
//! schedules at each candidate II:
//!
//! * nodes are enumerated in a connectivity-aware order so that every node
//!   (except the first of each component) has a placed neighbour bounding
//!   its feasible window,
//! * each node's candidate cycles span one II window derived from its placed
//!   neighbours,
//! * partial schedules are pruned with an admissible lower bound on the
//!   final buffer count,
//! * the number of explored placements is capped by
//!   [`SchedulerConfig::budget_per_ii`], after which the best schedule found
//!   so far is returned (tagged as possibly sub-optimal).
//!
//! On the Table-1-sized loops (5–25 operations) the search completes and the
//! result is exact; on larger loops it degrades gracefully into a
//! best-effort scheduler.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use hrms_ddg::{Ddg, LoopCore, NodeId, OpKind};
use hrms_machine::Machine;
use hrms_modsched::{
    LifetimeAnalysis, ModuloScheduler, PartialSchedule, SchedError, Schedule, ScheduleOutcome,
    SchedulerConfig,
};

/// Branch-and-bound buffer-minimising scheduler (SPILP stand-in).
#[derive(Debug, Clone, Default)]
pub struct BranchAndBoundScheduler {
    /// Shared scheduler configuration; `budget_per_ii` caps the number of
    /// explored placements per II.
    pub config: SchedulerConfig,
}

/// Result details specific to the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of node placements explored.
    pub explored: u64,
    /// Whether the search ran to completion (result provably optimal for the
    /// achieved II) or hit the budget.
    pub exhaustive: bool,
}

impl BranchAndBoundScheduler {
    /// Creates a branch-and-bound scheduler with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `ddg` and also returns the search statistics.
    ///
    /// # Errors
    ///
    /// Same as [`ModuloScheduler::schedule_loop`].
    pub fn schedule_with_stats(
        &self,
        ddg: &Ddg,
        machine: &Machine,
    ) -> Result<(ScheduleOutcome, SearchStats), SchedError> {
        self.schedule_with_stats_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    /// [`BranchAndBoundScheduler::schedule_with_stats`] over a shared
    /// machine-independent analysis core (see [`LoopCore`]).
    ///
    /// # Errors
    ///
    /// Same as [`ModuloScheduler::schedule_loop`].
    pub fn schedule_with_stats_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<(ScheduleOutcome, SearchStats), SchedError> {
        let mut stats = SearchStats {
            explored: 0,
            exhaustive: true,
        };
        let order = bfs_order(ddg);
        let greedy_order = crate::common::topdown_order(ddg);
        let outcome = crate::common::escalate_ii_with_core(
            ddg,
            core,
            machine,
            &self.config,
            |ii, _, la, _starts| {
                // Seed the incumbent with a greedy top-down schedule at this II.
                // This bounds the search from the start (better pruning) and
                // guarantees graceful degradation: even if the budget runs out
                // before the branch-and-bound completes a single leaf, the
                // scheduler still returns a valid schedule no worse than the
                // heuristic instead of escalating the II forever.
                let (seed, seed_cost) = match crate::common::schedule_directional_at_ii(
                    la,
                    machine,
                    &greedy_order,
                    ii,
                    crate::common::Direction::TopDown,
                ) {
                    Some(s) => {
                        let cost = LifetimeAnalysis::analyze(ddg, &s).buffers();
                        (Some(s), cost)
                    }
                    None => (None, u64::MAX),
                };
                let mut search = Search {
                    ddg,
                    machine,
                    ii,
                    order: &order,
                    best: seed,
                    best_cost: seed_cost,
                    explored: 0,
                    budget: self.config.budget_per_ii,
                };
                // Dense placement arcs: the exhaustive search evaluates
                // Early/Late_Start at every tree node, the hottest path in this
                // crate.
                let mut partial =
                    PartialSchedule::with_placement(machine, ii, la.placement().clone());
                search.explore(0, &mut partial);
                stats.explored += search.explored;
                if search.explored >= search.budget {
                    stats.exhaustive = false;
                }
                search.best
            },
        )?;
        Ok((outcome, stats))
    }
}

impl ModuloScheduler for BranchAndBoundScheduler {
    fn name(&self) -> &str {
        "B&B (SPILP stand-in)"
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_with_stats(ddg, machine).map(|(o, _)| o)
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_with_stats_core(ddg, machine, core)
            .map(|(o, _)| o)
    }
}

/// Breadth-first order over the weakly-connected structure, starting from
/// the lowest-numbered node of each component: every node except component
/// roots has an already-visited neighbour.
fn bfs_order(ddg: &Ddg) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(ddg.num_nodes());
    let mut seen: HashSet<NodeId> = HashSet::new();
    for component in ddg.connected_components() {
        let root = component[0];
        let mut queue = VecDeque::new();
        queue.push_back(root);
        seen.insert(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neighbours: Vec<NodeId> = ddg
                .successors(v)
                .into_iter()
                .chain(ddg.predecessors(v))
                .collect();
            neighbours.sort();
            neighbours.dedup();
            for w in neighbours {
                if seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

struct Search<'a> {
    ddg: &'a Ddg,
    machine: &'a Machine,
    ii: u32,
    order: &'a [NodeId],
    best: Option<Schedule>,
    best_cost: u64,
    explored: u64,
    budget: u64,
}

impl Search<'_> {
    fn explore(&mut self, depth: usize, partial: &mut PartialSchedule) {
        if self.explored >= self.budget {
            return;
        }
        if depth == self.order.len() {
            let schedule = partial.clone().into_schedule(self.ddg);
            let cost = LifetimeAnalysis::analyze(self.ddg, &schedule).buffers();
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best = Some(schedule);
            }
            return;
        }
        if self.lower_bound(partial) >= self.best_cost {
            return;
        }

        let u = self.order[depth];
        let early = partial.early_start(self.ddg, u);
        let late = partial.late_start(self.ddg, u);
        let candidates: Vec<i64> = match (early, late) {
            (Some(e), None) => (0..i64::from(self.ii)).map(|k| e + k).collect(),
            (None, Some(l)) => (0..i64::from(self.ii)).map(|k| l - k).collect(),
            (Some(e), Some(l)) => {
                if l < e {
                    Vec::new()
                } else {
                    (0..=(l - e).min(i64::from(self.ii) - 1))
                        .map(|k| e + k)
                        .collect()
                }
            }
            // The first node of a component: its absolute position is a free
            // translation, so one window of cycles is enough.
            (None, None) => (0..i64::from(self.ii)).collect(),
        };

        for cycle in candidates {
            if self.explored >= self.budget {
                return;
            }
            if partial.place_at(self.ddg, self.machine, u, cycle) {
                self.explored += 1;
                self.explore(depth + 1, partial);
                partial.unplace(u);
            }
        }
    }

    /// Admissible lower bound on the buffers of any completion of `partial`:
    /// each store costs one buffer; each value whose producer and at least
    /// one consumer are placed costs at least `ceil(observed span / II)`;
    /// every other consumed value costs at least 1.
    fn lower_bound(&self, partial: &PartialSchedule) -> u64 {
        let ii = i64::from(self.ii);
        let mut total = 0u64;
        for (id, node) in self.ddg.nodes() {
            if node.kind() == OpKind::Store {
                total += 1;
            }
            if !node.defines_value() {
                continue;
            }
            let consumers = self.ddg.consumers(id);
            if consumers.is_empty() {
                continue;
            }
            let Some(tp) = partial.cycle_of(id) else {
                total += 1;
                continue;
            };
            let mut span = 0i64;
            for (c, dist) in consumers {
                if let Some(tc) = partial.cycle_of(c) {
                    span = span.max(tc + i64::from(dist) * ii - tp);
                }
            }
            total += (span.max(1) as u64).div_ceil(self.ii as u64);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::validate_schedule;

    fn small_loop() -> Ddg {
        let mut b = DdgBuilder::new("small");
        let ld = b.node("ld", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.edge(acc, st, DepKind::RegFlow, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_a_valid_schedule_at_mii() {
        let g = small_loop();
        let m = presets::govindarajan();
        let (outcome, stats) = BranchAndBoundScheduler::new()
            .schedule_with_stats(&g, &m)
            .unwrap();
        assert_eq!(outcome.metrics.ii, outcome.metrics.mii);
        assert!(stats.exhaustive, "a 4-node loop is searched exhaustively");
        // The incumbent is seeded from a greedy schedule, so `explored` can
        // legitimately be 0 when the seed is already provably optimal (the
        // admissible bound prunes the root).
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn never_uses_more_buffers_than_the_heuristics() {
        let g = small_loop();
        let m = presets::govindarajan();
        let bb = BranchAndBoundScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        let hrms = hrms_core::HrmsScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        let td = crate::TopDownScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        assert_eq!(bb.metrics.ii, hrms.metrics.ii);
        assert!(bb.metrics.buffers <= hrms.metrics.buffers);
        assert!(bb.metrics.buffers <= td.metrics.buffers);
    }

    #[test]
    fn bfs_order_gives_every_node_a_placed_neighbour() {
        let g = small_loop();
        let order = bfs_order(&g);
        assert_eq!(order.len(), g.num_nodes());
        let mut seen: HashSet<NodeId> = HashSet::new();
        for (i, &n) in order.iter().enumerate() {
            if i > 0 {
                let has_neighbour = g
                    .predecessors(n)
                    .into_iter()
                    .chain(g.successors(n))
                    .any(|x| seen.contains(&x));
                assert!(has_neighbour);
            }
            seen.insert(n);
        }
    }

    #[test]
    fn budget_degrades_gracefully() {
        let g = small_loop();
        let m = presets::govindarajan();
        let scheduler = BranchAndBoundScheduler {
            config: SchedulerConfig {
                budget_per_ii: 5,
                ..SchedulerConfig::default()
            },
        };
        // With a tiny budget the search may fail at low IIs and escalate,
        // but it must still return a valid schedule (or a clean error).
        match scheduler.schedule_with_stats(&g, &m) {
            Ok((outcome, stats)) => {
                assert!(!stats.exhaustive || outcome.metrics.ii == outcome.metrics.mii);
                validate_schedule(&g, &m, &outcome.schedule).unwrap();
            }
            Err(e) => assert!(matches!(e, SchedError::NoValidSchedule { .. })),
        }
    }

    #[test]
    fn two_disconnected_components_are_both_scheduled() {
        let mut b = DdgBuilder::new("two");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        let d = b.node("d", OpKind::FpMul, 2);
        let e = b.node("e", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(d, e, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = BranchAndBoundScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        assert_eq!(outcome.metrics.ii, 3, "three adds share the single adder");
    }
}
