//! FRLC-style register-insensitive scheduler (decomposed software
//! pipelining).
//!
//! FRLC (Wang & Eisenbeis, *Decomposed Software Pipelining*) is the paper's
//! "heuristic that does not take register requirements into account". The
//! published algorithm first *decomposes* the cyclic scheduling problem by
//! assigning every operation a stage based on its resource-free earliest
//! start time, and then *compacts* the resulting acyclic body with list
//! scheduling. Operations are therefore placed as soon as their stage and
//! their already-placed producers allow, with no regard for how long the
//! produced values stay alive.
//!
//! This re-implementation (see DESIGN.md, substitutions table) follows that
//! two-phase structure: earliest-start levels at the candidate II drive both
//! the scheduling order and the ASAP placement; loop-carried constraints are
//! checked after the fact, and the II is escalated when they fail. The
//! resulting behaviour matches the role FRLC plays in Table 1: competitive
//! but not always optimal IIs, and clearly higher buffer requirements than
//! the lifetime-aware schedulers.

use std::sync::Arc;

use hrms_ddg::{Ddg, LoopAnalysis, LoopCore, NodeId, PerIiStarts};
use hrms_machine::Machine;
use hrms_modsched::{
    validate_schedule, ModuloScheduler, PartialSchedule, SchedError, Schedule, ScheduleOutcome,
    SchedulerConfig,
};

/// FRLC-style decomposed software-pipelining scheduler.
#[derive(Debug, Clone, Default)]
pub struct FrlcScheduler {
    /// Shared scheduler configuration.
    pub config: SchedulerConfig,
}

impl FrlcScheduler {
    /// Creates an FRLC-style scheduler with default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ModuloScheduler for FrlcScheduler {
    fn name(&self) -> &str {
        "FRLC"
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        crate::common::escalate_ii_with_core(
            ddg,
            core,
            machine,
            &self.config,
            |ii, _, la, starts| schedule_frlc_at_ii(la, starts, machine, ii),
        )
    }
}

/// One FRLC attempt at a fixed II, over the loop's shared analysis (dense
/// placement arcs for compaction) and the escalation driver's incremental
/// start-time cache (the decomposition levels update from the previous II
/// instead of rerunning Bellman-Ford from scratch).
fn schedule_frlc_at_ii(
    la: &LoopAnalysis<'_>,
    starts: &mut PerIiStarts,
    machine: &Machine,
    ii: u32,
) -> Option<Schedule> {
    let ddg = la.ddg();
    // Phase 1 (decomposition): resource-free earliest start times at this II
    // give each operation its stage and its scheduling priority.
    let est = starts.at(la, ii)?.earliest();
    let mut order: Vec<NodeId> = ddg.node_ids().collect();
    order.sort_by_key(|&n| (est[n.index()], n.index()));

    // Phase 2 (compaction): list-schedule in that order, placing every
    // operation as soon as possible — at or after both its level and its
    // already-placed producers — without looking at lifetimes or at
    // loop-carried successors.
    let mut partial = PartialSchedule::with_placement(machine, ii, la.placement().clone());
    for &u in &order {
        let lower = match partial.early_start(ddg, u) {
            Some(e) => e.max(est[u.index()]),
            None => est[u.index()],
        };
        partial.place_forward(ddg, machine, u, lower, ii)?;
    }
    let schedule = partial.into_schedule(ddg);

    // Loop-carried constraints towards already-placed operations were
    // ignored during compaction; reject the II if any is violated.
    if validate_schedule(ddg, machine, &schedule).is_err() {
        return None;
    }
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::LifetimeAnalysis;

    fn saxpy_like() -> Ddg {
        let mut b = DdgBuilder::new("saxpy");
        let lx = b.node("lx", OpKind::Load, 2);
        let ly = b.node("ly", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let add = b.node("add", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(lx, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, add, DepKind::RegFlow, 0).unwrap();
        b.edge(ly, add, DepKind::RegFlow, 0).unwrap();
        b.edge(add, st, DepKind::RegFlow, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn schedules_saxpy_at_mii_and_validates() {
        let g = saxpy_like();
        let m = presets::govindarajan();
        let outcome = FrlcScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 3, "3 memory ops on one unit");
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn recurrences_are_eventually_satisfied() {
        let mut b = DdgBuilder::new("rec");
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpMul, 2);
        let z = b.node("z", OpKind::FpAdd, 1);
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, z, DepKind::RegFlow, 0).unwrap();
        b.edge(z, x, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = FrlcScheduler::new().schedule_loop(&g, &m).unwrap();
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        assert!(outcome.metrics.ii >= outcome.metrics.rec_mii);
    }

    #[test]
    fn uses_at_least_as_many_buffers_as_hrms() {
        // The defining property of the register-insensitive baseline.
        let g = saxpy_like();
        let m = presets::govindarajan();
        let frlc = FrlcScheduler::new().schedule_loop(&g, &m).unwrap();
        let hrms = hrms_core::HrmsScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        let frlc_buf = LifetimeAnalysis::analyze(&g, &frlc.schedule).buffers();
        let hrms_buf = LifetimeAnalysis::analyze(&g, &hrms.schedule).buffers();
        assert!(frlc_buf >= hrms_buf);
    }

    #[test]
    fn order_follows_earliest_start_levels() {
        let g = saxpy_like();
        let m = presets::govindarajan();
        let outcome = FrlcScheduler::new().schedule_loop(&g, &m).unwrap();
        // Loads are level 0, so they are issued no later than the multiply.
        let s = &outcome.schedule;
        let lx = g.node_by_name("lx").unwrap();
        let mul = g.node_by_name("mul").unwrap();
        assert!(s.cycle(lx) < s.cycle(mul));
    }
}
