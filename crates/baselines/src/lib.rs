//! Baseline modulo schedulers for the HRMS reproduction.
//!
//! Every scheduler the paper compares HRMS against (plus one extra reference
//! point), all implementing [`hrms_modsched::ModuloScheduler`]:
//!
//! * [`TopDownScheduler`] — sources-first, as-soon-as-possible placement;
//!   the register-oblivious scheduler of the Section 4.2 comparison and of
//!   the motivating example (Figure 2).
//! * [`BottomUpScheduler`] — sinks-first, as-late-as-possible placement
//!   (Figure 3).
//! * [`SlackScheduler`] — Huff-style lifetime-sensitive slack scheduling
//!   with ejection (the paper's "Slack" column).
//! * [`FrlcScheduler`] — FRLC-style decomposed software pipelining, the
//!   register-insensitive heuristic of the "FRLC" column.
//! * [`BranchAndBoundScheduler`] — exhaustive buffer-minimising search, the
//!   stand-in for the SPILP integer-linear-programming formulation.
//! * [`IterativeScheduler`] — Rau's iterative modulo scheduling, an extra
//!   register-oblivious reference point used by the ablation benches.
//!
//! # Example
//!
//! ```
//! use hrms_baselines::all_baselines;
//! use hrms_modsched::ModuloScheduler;
//! use hrms_machine::presets;
//! use hrms_ddg::{DdgBuilder, OpKind, DepKind};
//!
//! # fn main() -> Result<(), hrms_modsched::SchedError> {
//! let mut b = DdgBuilder::new("loop");
//! let ld = b.node("ld", OpKind::Load, 2);
//! let st = b.node("st", OpKind::Store, 1);
//! b.edge(ld, st, DepKind::RegFlow, 0)?;
//! let ddg = b.build()?;
//! let machine = presets::govindarajan();
//! for scheduler in all_baselines() {
//!     let outcome = scheduler.schedule_loop(&ddg, &machine)?;
//!     assert!(outcome.metrics.ii >= outcome.metrics.mii);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backtrack;
pub mod bottomup;
pub mod common;
pub mod frlc;
pub mod iterative;
pub mod optimal;
pub mod slack;
pub mod topdown;

pub use bottomup::BottomUpScheduler;
pub use frlc::FrlcScheduler;
pub use iterative::IterativeScheduler;
pub use optimal::{BranchAndBoundScheduler, SearchStats};
pub use slack::SlackScheduler;
pub use topdown::TopDownScheduler;

use hrms_modsched::ModuloScheduler;

/// All baseline schedulers with default configuration, boxed behind the
/// common trait (handy for harnesses that iterate over schedulers).
pub fn all_baselines() -> Vec<Box<dyn ModuloScheduler>> {
    vec![
        Box::new(TopDownScheduler::new()),
        Box::new(BottomUpScheduler::new()),
        Box::new(SlackScheduler::new()),
        Box::new(FrlcScheduler::new()),
        Box::new(IterativeScheduler::new()),
        Box::new(BranchAndBoundScheduler::new()),
    ]
}

/// The schedulers of the paper's Table 1 comparison (HRMS itself lives in
/// `hrms-core`): Slack, FRLC and the SPILP stand-in.
pub fn table1_baselines() -> Vec<Box<dyn ModuloScheduler>> {
    vec![
        Box::new(SlackScheduler::new()),
        Box::new(FrlcScheduler::new()),
        Box::new(BranchAndBoundScheduler::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_have_distinct_names() {
        let names: Vec<String> = all_baselines()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn table1_baselines_are_a_subset() {
        assert_eq!(table1_baselines().len(), 3);
    }
}
