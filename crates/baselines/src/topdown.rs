//! The Top-Down baseline scheduler.
//!
//! This is the register-oblivious scheduler the paper compares against in
//! Section 4.2 (and in the motivating example of Section 2): operations are
//! visited sources-first (by increasing latency-weighted depth, critical
//! path first among ties) and each is placed **as soon as possible** after
//! its already-scheduled predecessors. Because source operations and
//! operations far from their consumers are placed as early as the resources
//! allow, operand lifetimes are stretched and the register pressure is high
//! — exactly the behaviour HRMS was designed to avoid.

use std::sync::Arc;

use hrms_ddg::{Ddg, LoopCore};
use hrms_machine::Machine;
use hrms_modsched::{ModuloScheduler, Perturbation, SchedError, ScheduleOutcome, SchedulerConfig};

use crate::common::{
    boost_order, escalate_ii_with_core, schedule_directional_at_ii, topdown_order, Direction,
};

/// Top-Down (ASAP) modulo scheduler.
#[derive(Debug, Clone, Default)]
pub struct TopDownScheduler {
    /// Shared scheduler configuration.
    pub config: SchedulerConfig,
}

impl TopDownScheduler {
    /// Creates a Top-Down scheduler with default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ModuloScheduler for TopDownScheduler {
    fn name(&self) -> &str {
        "Top-Down"
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        let order = topdown_order(ddg);
        escalate_ii_with_core(ddg, core, machine, &self.config, |ii, _, la, _starts| {
            schedule_directional_at_ii(la, machine, &order, ii, Direction::TopDown)
        })
    }

    fn schedule_loop_perturbed(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
        perturbation: &Perturbation,
    ) -> Result<ScheduleOutcome, SchedError> {
        let mut order = topdown_order(ddg);
        boost_order(&mut order, perturbation);
        escalate_ii_with_core(ddg, core, machine, &self.config, |ii, _, la, _starts| {
            schedule_directional_at_ii(la, machine, &order, ii, Direction::TopDown)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, NodeId, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::{validate_schedule, LifetimeAnalysis};

    /// The motivating example of the paper (Figure 1).
    fn figure1() -> (Ddg, Vec<NodeId>) {
        let mut b = DdgBuilder::new("fig1");
        let names = ["A", "B", "C", "D", "E", "F", "G"];
        let ids: Vec<NodeId> = names.iter().map(|n| b.node(*n, OpKind::Other, 2)).collect();
        let e = |s: usize, t: usize, b: &mut DdgBuilder| {
            b.edge(ids[s], ids[t], DepKind::RegFlow, 0).unwrap();
        };
        e(0, 1, &mut b);
        e(1, 2, &mut b);
        e(1, 3, &mut b);
        e(3, 5, &mut b);
        e(4, 5, &mut b);
        e(5, 6, &mut b);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn schedules_the_motivating_example_at_mii() {
        let (g, ids) = figure1();
        let m = presets::general_purpose();
        let outcome = TopDownScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 2);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        // The hallmark of top-down scheduling on this example: E (a source
        // feeding F) is placed as soon as possible, long before F.
        let s = &outcome.schedule;
        assert_eq!(s.cycle(ids[4]), 0, "E is placed at cycle 0");
        assert!(s.cycle(ids[5]) - s.cycle(ids[4]) > 2, "V5 is stretched");
    }

    #[test]
    fn uses_more_registers_than_hrms_on_the_motivating_example() {
        let (g, _) = figure1();
        let m = presets::general_purpose();
        let td = TopDownScheduler::new().schedule_loop(&g, &m).unwrap();
        let hrms = hrms_core::HrmsScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        let td_regs = LifetimeAnalysis::analyze(&g, &td.schedule).max_live();
        let hrms_regs = LifetimeAnalysis::analyze(&g, &hrms.schedule).max_live();
        assert_eq!(hrms_regs, 6);
        assert!(
            td_regs > hrms_regs,
            "paper: top-down needs 8 registers vs 6 for HRMS (got {td_regs} vs {hrms_regs})"
        );
    }

    #[test]
    fn handles_recurrences() {
        let mut b = DdgBuilder::new("rec");
        let ld = b.node("ld", OpKind::Load, 2);
        let add = b.node("add", OpKind::FpAdd, 1);
        b.edge(ld, add, DepKind::RegFlow, 0).unwrap();
        b.edge(add, add, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = TopDownScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 1);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn rejects_invalid_graphs() {
        let mut b = DdgBuilder::new("bad");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let err = TopDownScheduler::new()
            .schedule_loop(&g, &presets::govindarajan())
            .unwrap_err();
        assert_eq!(err, SchedError::ZeroDistanceCycle);
    }
}
