//! Rau's iterative modulo scheduling (IMS).
//!
//! Not one of the paper's comparison points (it appeared at the same
//! MICRO-27/28 period), but the de-facto standard modulo scheduler in
//! production compilers and therefore a useful extra reference point for the
//! benchmark harness: it is register-oblivious like Top-Down but finds
//! tighter IIs on resource- and recurrence-constrained loops thanks to its
//! force-place/eviction mechanism.

use std::sync::Arc;

use hrms_ddg::{Ddg, LoopCore};
use hrms_machine::Machine;
use hrms_modsched::{ModuloScheduler, SchedError, ScheduleOutcome, SchedulerConfig};

use crate::backtrack::{schedule_with_backtracking, Flavor};
use crate::common::escalate_ii_with_core;

/// Iterative modulo scheduler (Rau, MICRO-27).
#[derive(Debug, Clone, Default)]
pub struct IterativeScheduler {
    /// Shared scheduler configuration.
    pub config: SchedulerConfig,
}

impl IterativeScheduler {
    /// Creates an iterative scheduler with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    fn budget(&self, ddg: &Ddg) -> u64 {
        self.config
            .budget_per_ii
            .min(50 * ddg.num_nodes() as u64 + 200)
    }
}

impl ModuloScheduler for IterativeScheduler {
    fn name(&self) -> &str {
        "Iterative"
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        let budget = self.budget(ddg);
        escalate_ii_with_core(ddg, core, machine, &self.config, |ii, _, la, starts| {
            schedule_with_backtracking(la, starts, machine, ii, Flavor::Iterative, budget)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, NodeId, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::validate_schedule;

    #[test]
    fn schedules_a_mixed_loop_at_mii() {
        let mut b = DdgBuilder::new("mixed");
        let ld0 = b.node("ld0", OpKind::Load, 2);
        let ld1 = b.node("ld1", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld0, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(ld1, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.edge(acc, st, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = IterativeScheduler::new().schedule_loop(&g, &m).unwrap();
        // ResMII: 3 memory ops on 1 unit = 3.
        assert_eq!(outcome.metrics.ii, 3);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn tight_recurrence_plus_resources() {
        // A recurrence whose window is tight enough that naive one-pass
        // scheduling fails at MII; eviction lets IMS still reach it or stay
        // close.
        let mut b = DdgBuilder::new("tight");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        let d = b.node("d", OpKind::Load, 2);
        let e = b.node("e", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegAnti, 1).unwrap();
        b.edge(d, e, DepKind::RegFlow, 0).unwrap();
        b.edge(e, d, DepKind::RegAnti, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = IterativeScheduler::new().schedule_loop(&g, &m).unwrap();
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        assert!(outcome.metrics.ii <= outcome.metrics.mii + 1);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(IterativeScheduler::new().name(), "Iterative");
    }

    #[test]
    fn single_store_loop() {
        let mut b = DdgBuilder::new("st");
        let ld = b.node("ld", OpKind::Load, 2);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld, st, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let m = presets::perfect_club();
        let outcome = IterativeScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 1);
        let _ = outcome.schedule.kernel();
        let names: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(names.len(), 2);
    }
}
