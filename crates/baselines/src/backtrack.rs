//! Backtracking (force-place / eviction) scheduling core shared by the
//! Slack and Iterative baseline schedulers.
//!
//! Both Huff's slack scheduling and Rau's iterative modulo scheduling keep a
//! partial schedule and, when an operation finds no conflict-free slot in
//! its window, *force* it into place and evict whatever it collides with
//! (resource conflicts and violated dependences). Evicted operations go back
//! to the unscheduled pool. A per-II budget bounds the total number of
//! placements so the search always terminates; when the budget is exhausted
//! the caller increases the II.

use std::collections::{HashMap, HashSet};

use hrms_ddg::{Ddg, LoopAnalysis, NodeId, PerIiStarts, PlacementCsr};
use hrms_machine::Machine;
use hrms_modsched::{PartialSchedule, Schedule};

/// Which heuristic drives node selection and placement direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Rau's iterative modulo scheduling: highest priority = smallest
    /// latest-start (most critical), placement always as soon as possible.
    Iterative,
    /// Huff's lifetime-sensitive slack scheduling: highest priority =
    /// smallest dynamic slack, placement direction chosen to keep operand
    /// lifetimes short.
    Slack,
}

/// One attempt at a fixed II, over the loop's shared analysis (cached
/// dependence edges for the static bounds, dense placement arcs for the
/// dynamic ones and for eviction) and the escalation driver's incremental
/// start-time cache (the static bounds update from the previous II instead
/// of rerunning Bellman-Ford from scratch). Returns `None` if the placement
/// budget was exhausted (caller escalates the II).
pub fn schedule_with_backtracking(
    la: &LoopAnalysis<'_>,
    starts: &mut PerIiStarts,
    machine: &Machine,
    ii: u32,
    flavor: Flavor,
    budget: u64,
) -> Option<Schedule> {
    let ddg = la.ddg();
    let solved = starts.at(la, ii)?;
    let est = solved.earliest().to_vec();
    let horizon = est.iter().copied().max().unwrap_or(0)
        + ddg
            .nodes()
            .map(|(_, node)| i64::from(node.latency()))
            .max()
            .unwrap_or(1);
    let lst = solved.latest(horizon);

    let mut partial = PartialSchedule::with_placement(machine, ii, la.placement().clone());
    let mut unscheduled: HashSet<NodeId> = ddg.node_ids().collect();
    // The last cycle each node was placed at; forcing moves strictly past it
    // so repeated evictions make forward progress.
    let mut last_time: HashMap<NodeId, i64> = HashMap::new();
    let mut placements: u64 = 0;

    while !unscheduled.is_empty() {
        if placements >= budget {
            return None;
        }
        let u = pick_node(ddg, &partial, &unscheduled, &est, &lst, flavor);

        // Dynamic bounds from already-placed neighbours.
        let dyn_early = match partial.early_start(ddg, u) {
            Some(e) => e.max(est[u.index()]),
            None => est[u.index()],
        };
        let dyn_late = partial.late_start(ddg, u);

        let place_late = match flavor {
            Flavor::Iterative => false,
            Flavor::Slack => {
                let has_sched_pred = !partial.scheduled_predecessors(ddg, u).is_empty();
                let has_sched_succ = !partial.scheduled_successors(ddg, u).is_empty();
                if has_sched_succ && !has_sched_pred {
                    true
                } else if has_sched_pred {
                    false
                } else {
                    // No scheduled neighbour: prefer the direction of the
                    // fewer stretchable flow dependences (Huff's tie-break).
                    ddg.consumers(u).len() < ddg.predecessors(u).len()
                }
            }
        };

        let attempted = if place_late {
            let from = dyn_late.unwrap_or(lst[u.index()]);
            let span = if let Some(e) = partial.early_start(ddg, u) {
                ((from - e.max(est[u.index()]) + 1).max(0) as u64).min(u64::from(ii)) as u32
            } else {
                ii
            };
            partial.place_backward(ddg, machine, u, from, span)
        } else {
            let span = if let Some(l) = dyn_late {
                ((l - dyn_early + 1).max(0) as u64).min(u64::from(ii)) as u32
            } else {
                ii
            };
            partial.place_forward(ddg, machine, u, dyn_early, span)
        };

        let cycle = match attempted {
            Some(c) => c,
            None => {
                // Force placement (Rau's rule): strictly after the node's
                // previous position so progress is guaranteed.
                let force_at = match last_time.get(&u) {
                    Some(&prev) => dyn_early.max(prev + 1),
                    None => dyn_early,
                };
                force_place(
                    ddg,
                    la.placement(),
                    machine,
                    &mut partial,
                    &mut unscheduled,
                    u,
                    force_at,
                    ii,
                );
                force_at
            }
        };
        last_time.insert(u, cycle);
        unscheduled.remove(&u);
        placements += 1;
    }

    Some(partial.into_schedule(ddg))
}

/// Picks the next node to schedule.
fn pick_node(
    ddg: &Ddg,
    partial: &PartialSchedule,
    unscheduled: &HashSet<NodeId>,
    est: &[i64],
    lst: &[i64],
    flavor: Flavor,
) -> NodeId {
    let mut best: Option<(i64, i64, usize, NodeId)> = None;
    for &u in unscheduled {
        let key = match flavor {
            Flavor::Iterative => {
                // Smallest latest start first (critical path first), then
                // smallest earliest start.
                (lst[u.index()], est[u.index()], u.index(), u)
            }
            Flavor::Slack => {
                // Smallest dynamic slack first.
                let dyn_early = match partial.early_start(ddg, u) {
                    Some(e) => e.max(est[u.index()]),
                    None => est[u.index()],
                };
                let dyn_late = match partial.late_start(ddg, u) {
                    Some(l) => l.min(lst[u.index()]),
                    None => lst[u.index()],
                };
                (dyn_late - dyn_early, est[u.index()], u.index(), u)
            }
        };
        match best {
            Some(b) if (b.0, b.1, b.2) <= (key.0, key.1, key.2) => {}
            _ => best = Some(key),
        }
    }
    best.expect("unscheduled set is non-empty").3
}

/// Forces `u` to cycle `at`, evicting resource-conflicting operations of the
/// same class and any operation whose dependence with `u` would be violated.
/// Violation checks scan the dense placement arcs (precomputed latencies,
/// self-loops already excluded).
#[allow(clippy::too_many_arguments)]
fn force_place(
    ddg: &Ddg,
    arcs: &PlacementCsr,
    machine: &Machine,
    partial: &mut PartialSchedule,
    unscheduled: &mut HashSet<NodeId>,
    u: NodeId,
    at: i64,
    ii: u32,
) {
    // 1. Evict dependence violators.
    let mut victims: Vec<NodeId> = Vec::new();
    for a in arcs.out_arcs(u.index()) {
        let w = NodeId(a.other);
        if let Some(tw) = partial.cycle_of(w) {
            let required = at + i64::from(a.latency) - i64::from(a.distance) * i64::from(ii);
            if tw < required {
                victims.push(w);
            }
        }
    }
    for a in arcs.in_arcs(u.index()) {
        let w = NodeId(a.other);
        if let Some(tw) = partial.cycle_of(w) {
            let required = tw + i64::from(a.latency) - i64::from(a.distance) * i64::from(ii);
            if at < required {
                victims.push(w);
            }
        }
    }
    for v in victims {
        if partial.unplace(v) {
            unscheduled.insert(v);
        }
    }

    // 2. Evict same-class operations until `u` fits at `at`.
    if !partial.place_at(ddg, machine, u, at) {
        let class = machine.class_of(ddg.node(u).kind());
        let mut same_class: Vec<(NodeId, i64)> = partial
            .placements()
            .filter(|&(v, _)| machine.class_of(ddg.node(v).kind()) == class)
            .collect();
        // Evict the ones whose modulo slot is closest to ours first.
        let occupancy = i64::from(machine.occupancy_of(ddg.node(u).kind()));
        same_class.sort_by_key(|&(v, c)| {
            let delta = (c - at).rem_euclid(i64::from(ii));
            (delta >= occupancy, delta, v.index())
        });
        for (v, _) in same_class {
            partial.unplace(v);
            unscheduled.insert(v);
            if partial.place_at(ddg, machine, u, at) {
                return;
            }
        }
        // With every same-class operation evicted the placement must
        // succeed (the class has at least one unit).
        assert!(
            partial.place_at(ddg, machine, u, at),
            "forced placement failed even after evicting every same-class operation"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::validate_schedule;

    fn dense_loads() -> Ddg {
        // Four loads feeding one chain of adds; the single load/store unit
        // makes II = 4 and forces conflicts that exercise the eviction path.
        let mut b = DdgBuilder::new("dense");
        let mut adds = Vec::new();
        let mut prev_add: Option<NodeId> = None;
        for i in 0..4 {
            let ld = b.node(format!("ld{i}"), OpKind::Load, 2);
            let add = b.node(format!("add{i}"), OpKind::FpAdd, 1);
            b.edge(ld, add, DepKind::RegFlow, 0).unwrap();
            if let Some(p) = prev_add {
                b.edge(p, add, DepKind::RegFlow, 0).unwrap();
            }
            prev_add = Some(add);
            adds.push(add);
        }
        b.build().unwrap()
    }

    #[test]
    fn both_flavors_produce_valid_schedules() {
        let g = dense_loads();
        let m = presets::govindarajan();
        let la = LoopAnalysis::analyze(&g);
        for flavor in [Flavor::Iterative, Flavor::Slack] {
            let s = schedule_with_backtracking(&la, &mut PerIiStarts::new(), &m, 4, flavor, 10_000)
                .unwrap_or_else(|| panic!("{flavor:?} failed at II = 4"));
            validate_schedule(&g, &m, &s).unwrap();
            assert_eq!(s.ii(), 4);
        }
    }

    #[test]
    fn recurrences_are_respected() {
        let mut b = DdgBuilder::new("rec");
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpMul, 2);
        let z = b.node("z", OpKind::FpAdd, 1);
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, z, DepKind::RegFlow, 0).unwrap();
        b.edge(z, x, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let la = LoopAnalysis::analyze(&g);
        for flavor in [Flavor::Iterative, Flavor::Slack] {
            let s = schedule_with_backtracking(&la, &mut PerIiStarts::new(), &m, 4, flavor, 10_000)
                .unwrap();
            validate_schedule(&g, &m, &s).unwrap();
        }
    }

    #[test]
    fn infeasible_ii_returns_none_via_est() {
        let mut b = DdgBuilder::new("tight");
        let a = b.node("a", OpKind::FpAdd, 4);
        b.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let la = LoopAnalysis::analyze(&g);
        assert!(schedule_with_backtracking(
            &la,
            &mut PerIiStarts::new(),
            &m,
            3,
            Flavor::Iterative,
            1000
        )
        .is_none());
        assert!(schedule_with_backtracking(
            &la,
            &mut PerIiStarts::new(),
            &m,
            4,
            Flavor::Iterative,
            1000
        )
        .is_some());
    }

    #[test]
    fn a_tiny_budget_fails_gracefully() {
        let g = dense_loads();
        let m = presets::govindarajan();
        let la = LoopAnalysis::analyze(&g);
        assert!(
            schedule_with_backtracking(&la, &mut PerIiStarts::new(), &m, 4, Flavor::Slack, 2)
                .is_none()
        );
    }
}
