//! Shared machinery of the baseline schedulers: priority orders, the
//! II-escalation driver, and directional (top-down / bottom-up) placement.

use std::sync::Arc;
use std::time::Instant;

use hrms_ddg::{Ddg, LoopAnalysis, LoopCore, NodeId, PerIiStarts, TopoLevels};
use hrms_machine::Machine;
use hrms_modsched::{
    MiiInfo, PartialSchedule, Perturbation, SchedError, Schedule, ScheduleOutcome, SchedulerConfig,
};

/// Direction of a one-pass list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Schedule sources first, each as soon as possible (Top-Down).
    TopDown,
    /// Schedule sinks first, each as late as possible (Bottom-Up).
    BottomUp,
}

/// The node order used by the Top-Down scheduler: by increasing depth (the
/// latency-weighted longest path from any source), breaking ties by larger
/// height (more critical first) and finally program order. All a node's
/// intra-iteration predecessors precede it in this order.
pub fn topdown_order(ddg: &Ddg) -> Vec<NodeId> {
    let levels = TopoLevels::compute(ddg).unwrap_or_else(|_| {
        // Invalid (zero-distance-cyclic) graphs are rejected later by the
        // MII computation; fall back to program order so ordering never
        // fails.
        TopoLevels::compute(&trivial_copy(ddg)).expect("trivial graph is acyclic")
    });
    let mut order: Vec<NodeId> = ddg.node_ids().collect();
    order.sort_by_key(|&n| {
        (
            levels.depth(n),
            std::cmp::Reverse(levels.height(n)),
            n.index(),
        )
    });
    order
}

/// The node order used by the Bottom-Up scheduler: by increasing height (the
/// latency-weighted longest path to any sink), i.e. sinks first, breaking
/// ties by larger depth and finally program order. All a node's
/// intra-iteration successors precede it in this order.
pub fn bottomup_order(ddg: &Ddg) -> Vec<NodeId> {
    let levels = TopoLevels::compute(ddg).unwrap_or_else(|_| {
        TopoLevels::compute(&trivial_copy(ddg)).expect("trivial graph is acyclic")
    });
    let mut order: Vec<NodeId> = ddg.node_ids().collect();
    order.sort_by_key(|&n| {
        (
            levels.height(n),
            std::cmp::Reverse(levels.depth(n)),
            n.index(),
        )
    });
    order
}

/// The priority-perturbation hook of the directional baselines: re-ranks an
/// existing priority order under a feedback [`Perturbation`] by a *stable*
/// sort on decreasing boost. Boosted (critical) nodes move to the front of
/// the list order while every unboosted node keeps its relative position,
/// so the identity perturbation leaves the order untouched — the guarantee
/// `feedback`-wrapped baselines rely on for their attempt-0 baseline.
pub fn boost_order(order: &mut [NodeId], perturbation: &Perturbation) {
    order.sort_by_key(|&n| std::cmp::Reverse(perturbation.boost_of(n)));
}

/// A copy of `ddg` with every edge removed — used only as a fallback when the
/// level computation rejects an invalid graph (those graphs are rejected by
/// the MII computation before scheduling anyway).
fn trivial_copy(ddg: &Ddg) -> Ddg {
    let mut b = hrms_ddg::DdgBuilder::new(ddg.name());
    for (_, n) in ddg.nodes() {
        b.node(n.name(), n.kind(), n.latency());
    }
    b.build().expect("node-only copy of a valid graph")
}

/// One pass of directional list scheduling at a fixed II, over the loop's
/// shared analysis (the dense placement arcs drive every
/// `Early_Start`/`Late_Start`).
///
/// Top-Down places every node as soon as possible after its already-placed
/// predecessors (and never later than any already-placed successor allows);
/// Bottom-Up is the mirror image. Returns `None` when some node finds no
/// free slot, in which case the caller escalates the II.
pub fn schedule_directional_at_ii(
    la: &LoopAnalysis<'_>,
    machine: &Machine,
    order: &[NodeId],
    ii: u32,
    direction: Direction,
) -> Option<Schedule> {
    let ddg = la.ddg();
    let mut partial = PartialSchedule::with_placement(machine, ii, la.placement().clone());
    for &u in order {
        let early = partial.early_start(ddg, u);
        let late = partial.late_start(ddg, u);
        let placed = match direction {
            Direction::TopDown => {
                let from = early.unwrap_or(0);
                match late {
                    None => partial.place_forward(ddg, machine, u, from, ii),
                    Some(l) if l < from => None,
                    Some(l) => {
                        let window = (l - from + 1).min(i64::from(ii)) as u32;
                        partial.place_forward(ddg, machine, u, from, window)
                    }
                }
            }
            Direction::BottomUp => {
                let from = late.unwrap_or(0);
                match early {
                    None => partial.place_backward(ddg, machine, u, from, ii),
                    Some(e) if e > from => None,
                    Some(e) => {
                        let window = (from - e + 1).min(i64::from(ii)) as u32;
                        partial.place_backward(ddg, machine, u, from, window)
                    }
                }
            }
        };
        placed?;
    }
    Some(partial.into_schedule(ddg))
}

/// The II-escalation driver shared by every baseline: analyses the loop
/// once, computes the MII from the cached analysis, then tries
/// `attempt(ii, mii, &analysis, &mut starts)` for II = MII, MII+1, ... up
/// to the configured cap. The analysis handed to every attempt carries the
/// dense placement arcs and the cached dependence-edge list, and the
/// [`PerIiStarts`] cache updates the resource-free earliest/latest start
/// times **incrementally** from one II to the next (the loop-carried edge
/// weights shift by one per unit of distance), so per-II passes neither
/// rebuild per-loop structures nor rerun the Bellman-Ford passes from
/// scratch.
pub fn escalate_ii<F>(
    ddg: &Ddg,
    machine: &Machine,
    config: &SchedulerConfig,
    attempt: F,
) -> Result<ScheduleOutcome, SchedError>
where
    F: FnMut(u32, MiiInfo, &LoopAnalysis<'_>, &mut PerIiStarts) -> Option<Schedule>,
{
    escalate_ii_with_core(ddg, &Arc::new(LoopCore::new()), machine, config, attempt)
}

/// [`escalate_ii`] over a shared machine-independent analysis core: batch
/// drivers scheduling the same loop against several machines pass one
/// `Arc<LoopCore>` per loop so Tarjan, the cycle-ratio λ-search and the
/// dense CSRs are built exactly once across every (machine, scheduler)
/// cell.
pub fn escalate_ii_with_core<F>(
    ddg: &Ddg,
    core: &Arc<LoopCore>,
    machine: &Machine,
    config: &SchedulerConfig,
    mut attempt: F,
) -> Result<ScheduleOutcome, SchedError>
where
    F: FnMut(u32, MiiInfo, &LoopAnalysis<'_>, &mut PerIiStarts) -> Option<Schedule>,
{
    let start = Instant::now();
    let analysis = LoopAnalysis::with_core(ddg, Arc::clone(core));
    let mii = MiiInfo::compute(machine, &analysis)?;
    // Under the verify-recurrence feature, every loop the escalation
    // driver schedules also cross-checks the cycle-ratio analysis against
    // the exact scheduling RecMII: the paper-metric per-node maximum
    // (operation-latency sums) can never undershoot the
    // dependence-latency bound the MII is built from, and the two agree
    // exactly on flow-only recurrences.
    #[cfg(feature = "verify-recurrence")]
    {
        let bound = analysis.cycle_ratios().rec_mii_lower_bound();
        let exact = analysis.rec_mii().map_or(u64::MAX, u64::from);
        assert!(
            bound >= exact,
            "`{}`: cycle-ratio bound {bound} undershoots the exact RecMII {exact}",
            ddg.name()
        );
    }
    let max_ii = config.effective_max_ii(ddg, mii.mii());
    if max_ii < mii.mii() {
        return Err(SchedError::NoValidSchedule {
            max_ii_tried: max_ii,
        });
    }
    let mut starts = PerIiStarts::new();
    let mut attempts = 0;
    let mut ii = mii.mii();
    loop {
        attempts += 1;
        if let Some(schedule) = attempt(ii, mii, &analysis, &mut starts) {
            return Ok(ScheduleOutcome::new(
                ddg,
                schedule,
                mii,
                attempts,
                start.elapsed(),
                std::time::Duration::ZERO,
            ));
        }
        if ii >= max_ii {
            return Err(SchedError::NoValidSchedule { max_ii_tried: ii });
        }
        ii += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::validate_schedule;

    fn diamond() -> Ddg {
        let mut b = DdgBuilder::new("diamond");
        let a = b.node("a", OpKind::Load, 2);
        let x = b.node("x", OpKind::FpMul, 2);
        let y = b.node("y", OpKind::FpAdd, 1);
        let d = b.node("d", OpKind::Store, 1);
        b.edge(a, x, DepKind::RegFlow, 0).unwrap();
        b.edge(a, y, DepKind::RegFlow, 0).unwrap();
        b.edge(x, d, DepKind::RegFlow, 0).unwrap();
        b.edge(y, d, DepKind::RegFlow, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn topdown_order_puts_sources_first() {
        let g = diamond();
        let order = topdown_order(&g);
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order[3], NodeId(3));
        // x is on the longer path (latency 2 vs 1) so it precedes y.
        assert_eq!(order[1], NodeId(1));
    }

    #[test]
    fn bottomup_order_puts_sinks_first() {
        let g = diamond();
        let order = bottomup_order(&g);
        assert_eq!(order[0], NodeId(3));
        assert_eq!(order[3], NodeId(0));
    }

    #[test]
    fn orders_cover_every_node_once() {
        let g = diamond();
        for order in [topdown_order(&g), bottomup_order(&g)] {
            let mut o = order.clone();
            o.sort();
            o.dedup();
            assert_eq!(o.len(), g.num_nodes());
        }
    }

    #[test]
    fn directional_schedules_are_valid() {
        let g = diamond();
        let m = presets::govindarajan();
        let la = LoopAnalysis::analyze(&g);
        for (order, dir) in [
            (topdown_order(&g), Direction::TopDown),
            (bottomup_order(&g), Direction::BottomUp),
        ] {
            let s = schedule_directional_at_ii(&la, &m, &order, 2, dir).unwrap();
            validate_schedule(&g, &m, &s).unwrap();
        }
    }

    #[test]
    fn escalation_stops_at_the_cap() {
        let g = diamond();
        let m = presets::govindarajan();
        let config = SchedulerConfig {
            max_ii: Some(3),
            ..SchedulerConfig::default()
        };
        // An attempt that always fails must exhaust the cap.
        let err = escalate_ii(&g, &m, &config, |_, _, _, _| None).unwrap_err();
        assert_eq!(err, SchedError::NoValidSchedule { max_ii_tried: 3 });
    }

    #[test]
    fn escalation_reports_attempts() {
        let g = diamond();
        let m = presets::govindarajan();
        let config = SchedulerConfig::default();
        let order = topdown_order(&g);
        let outcome = escalate_ii(&g, &m, &config, |ii, _, la, _starts| {
            if ii < 4 {
                None
            } else {
                schedule_directional_at_ii(la, &m, &order, ii, Direction::TopDown)
            }
        })
        .unwrap();
        assert_eq!(outcome.metrics.ii, 4);
        assert_eq!(outcome.attempts, 3, "II 2 and 3 failed, 4 succeeded");
    }
}
