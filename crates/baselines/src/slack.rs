//! Slack scheduling (Huff-style lifetime-sensitive baseline).
//!
//! Huff's *Lifetime-Sensitive Modulo Scheduling* (PLDI 1993) is the
//! heuristic closest in spirit to HRMS among the paper's comparison points:
//! it also tries to keep operand lifetimes short, but it does so by
//! scheduling operations in order of increasing *slack* (the freedom between
//! their earliest and latest feasible start) and choosing, per operation,
//! whether to place it early or late. When an operation finds no free slot
//! it is forced into place and the conflicting operations are ejected and
//! rescheduled, up to a per-II budget.
//!
//! This implementation is a re-implementation from the published
//! description (see DESIGN.md, substitutions table); it shares the
//! force-place/eviction core with the iterative scheduler.

use std::sync::Arc;

use hrms_ddg::{Ddg, LoopCore};
use hrms_machine::Machine;
use hrms_modsched::{ModuloScheduler, SchedError, ScheduleOutcome, SchedulerConfig};

use crate::backtrack::{schedule_with_backtracking, Flavor};
use crate::common::escalate_ii_with_core;

/// Huff-style slack scheduler.
#[derive(Debug, Clone, Default)]
pub struct SlackScheduler {
    /// Shared scheduler configuration (the per-II placement budget comes
    /// from [`SchedulerConfig::budget_per_ii`]).
    pub config: SchedulerConfig,
}

impl SlackScheduler {
    /// Creates a slack scheduler with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    fn budget(&self, ddg: &Ddg) -> u64 {
        // Huff bounds the number of placements per II attempt to a small
        // multiple of the operation count.
        self.config
            .budget_per_ii
            .min(50 * ddg.num_nodes() as u64 + 200)
    }
}

impl ModuloScheduler for SlackScheduler {
    fn name(&self) -> &str {
        "Slack"
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        let budget = self.budget(ddg);
        escalate_ii_with_core(ddg, core, machine, &self.config, |ii, _, la, starts| {
            schedule_with_backtracking(la, starts, machine, ii, Flavor::Slack, budget)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, NodeId, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::validate_schedule;

    fn figure1() -> Ddg {
        let mut b = DdgBuilder::new("fig1");
        let ids: Vec<NodeId> = ["A", "B", "C", "D", "E", "F", "G"]
            .iter()
            .map(|n| b.node(*n, OpKind::Other, 2))
            .collect();
        for (s, t) in [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)] {
            b.edge(ids[s], ids[t], DepKind::RegFlow, 0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn schedules_the_motivating_example_at_mii() {
        let g = figure1();
        let m = presets::general_purpose();
        let outcome = SlackScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 2);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn keeps_lifetimes_reasonably_short() {
        // Slack scheduling is lifetime-sensitive: on the motivating example
        // it should not be dramatically worse than HRMS.
        let g = figure1();
        let m = presets::general_purpose();
        let slack = SlackScheduler::new().schedule_loop(&g, &m).unwrap();
        let hrms = hrms_core::HrmsScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        assert!(slack.metrics.max_live <= hrms.metrics.max_live + 2);
    }

    #[test]
    fn recurrence_bound_loop_is_scheduled_at_rec_mii() {
        let mut b = DdgBuilder::new("rec");
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpDiv, 17);
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, x, DepKind::RegFlow, 2).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = SlackScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.rec_mii, 9);
        assert_eq!(outcome.metrics.ii, 9);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn resource_heavy_loop_is_valid() {
        let mut b = DdgBuilder::new("res");
        let mut prev: Option<NodeId> = None;
        for i in 0..8 {
            let ld = b.node(format!("ld{i}"), OpKind::Load, 2);
            let add = b.node(format!("add{i}"), OpKind::FpAdd, 1);
            b.edge(ld, add, DepKind::RegFlow, 0).unwrap();
            if let Some(p) = prev {
                b.edge(p, add, DepKind::RegFlow, 0).unwrap();
            }
            prev = Some(add);
        }
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = SlackScheduler::new().schedule_loop(&g, &m).unwrap();
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        assert!(outcome.metrics.ii >= 8, "eight loads on one unit");
    }
}
