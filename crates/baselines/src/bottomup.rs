//! The Bottom-Up baseline scheduler.
//!
//! The mirror image of [`crate::TopDownScheduler`]: operations are visited
//! sinks-first (by increasing latency-weighted height) and each is placed
//! **as late as possible** before its already-scheduled successors. As
//! Section 2.1 of the paper explains, this fixes the lifetimes that
//! top-down scheduling stretches (values produced by sources) but stretches
//! the symmetric ones instead (values consumed by sinks whose producers are
//! pushed early), so the register pressure is still higher than HRMS's.

use std::sync::Arc;

use hrms_ddg::{Ddg, LoopCore};
use hrms_machine::Machine;
use hrms_modsched::{ModuloScheduler, Perturbation, SchedError, ScheduleOutcome, SchedulerConfig};

use crate::common::{
    boost_order, bottomup_order, escalate_ii_with_core, schedule_directional_at_ii, Direction,
};

/// Bottom-Up (ALAP) modulo scheduler.
#[derive(Debug, Clone, Default)]
pub struct BottomUpScheduler {
    /// Shared scheduler configuration.
    pub config: SchedulerConfig,
}

impl BottomUpScheduler {
    /// Creates a Bottom-Up scheduler with default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ModuloScheduler for BottomUpScheduler {
    fn name(&self) -> &str {
        "Bottom-Up"
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        let order = bottomup_order(ddg);
        escalate_ii_with_core(ddg, core, machine, &self.config, |ii, _, la, _starts| {
            schedule_directional_at_ii(la, machine, &order, ii, Direction::BottomUp)
        })
    }

    fn schedule_loop_perturbed(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
        perturbation: &Perturbation,
    ) -> Result<ScheduleOutcome, SchedError> {
        let mut order = bottomup_order(ddg);
        boost_order(&mut order, perturbation);
        escalate_ii_with_core(ddg, core, machine, &self.config, |ii, _, la, _starts| {
            schedule_directional_at_ii(la, machine, &order, ii, Direction::BottomUp)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, NodeId, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::{validate_schedule, LifetimeAnalysis};

    fn figure1() -> (Ddg, Vec<NodeId>) {
        let mut b = DdgBuilder::new("fig1");
        let names = ["A", "B", "C", "D", "E", "F", "G"];
        let ids: Vec<NodeId> = names.iter().map(|n| b.node(*n, OpKind::Other, 2)).collect();
        let e = |s: usize, t: usize, b: &mut DdgBuilder| {
            b.edge(ids[s], ids[t], DepKind::RegFlow, 0).unwrap();
        };
        e(0, 1, &mut b);
        e(1, 2, &mut b);
        e(1, 3, &mut b);
        e(3, 5, &mut b);
        e(4, 5, &mut b);
        e(5, 6, &mut b);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn schedules_the_motivating_example_at_mii_and_validates() {
        let (g, ids) = figure1();
        let m = presets::general_purpose();
        let outcome = BottomUpScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 2);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        // Bottom-up places E tightly against F (the paper's point; a resource
        // conflict can push it one extra cycle)...
        let s = &outcome.schedule;
        assert!(s.cycle(ids[5]) - s.cycle(ids[4]) <= 3, "E sits close to F");
        // ...but C, a sink, is pushed away from its producer B.
        assert!(s.cycle(ids[2]) - s.cycle(ids[1]) > 2, "V2 is stretched");
    }

    #[test]
    fn register_usage_sits_between_hrms_and_nothing_in_particular() {
        // The paper's example: HRMS 6 registers, bottom-up 7, top-down 8.
        // Exact baseline counts depend on tie-breaking; we assert the robust
        // relation HRMS <= bottom-up.
        let (g, _) = figure1();
        let m = presets::general_purpose();
        let bu = BottomUpScheduler::new().schedule_loop(&g, &m).unwrap();
        let hrms = hrms_core::HrmsScheduler::new()
            .schedule_loop(&g, &m)
            .unwrap();
        let bu_regs = LifetimeAnalysis::analyze(&g, &bu.schedule).max_live();
        let hrms_regs = LifetimeAnalysis::analyze(&g, &hrms.schedule).max_live();
        assert!(hrms_regs <= bu_regs, "HRMS must not need more registers");
    }

    #[test]
    fn handles_recurrences() {
        let mut b = DdgBuilder::new("rec");
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpMul, 2);
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, x, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = BottomUpScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 3);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn single_node_graph() {
        let mut b = DdgBuilder::new("one");
        b.node("only", OpKind::Store, 1);
        let g = b.build().unwrap();
        let outcome = BottomUpScheduler::new()
            .schedule_loop(&g, &presets::perfect_club())
            .unwrap();
        assert_eq!(outcome.metrics.ii, 1);
    }
}
