//! Regenerates the motivating-example comparison of Section 2 (Figures 2, 3
//! and 4): top-down, bottom-up and HRMS schedules, kernels and register
//! requirements for the Figure 1 dependence graph.
//!
//! Usage: `cargo run --release -p hrms-bench --bin fig2_4`

fn main() {
    let result = hrms_bench::figures::motivating_example();
    println!("Figures 2–4 — motivating example (4 general-purpose units, latency 2)\n");
    println!("{}", result.report);
    println!(
        "registers: Top-Down {}, Bottom-Up {}, HRMS {}   (paper: 8 / 7 / 6)",
        result.topdown_registers, result.bottomup_registers, result.hrms_registers
    );
}
