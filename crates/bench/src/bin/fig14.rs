//! Regenerates Figure 14: total cycles needed to execute the loop suite with
//! unlimited, 64 and 32 registers (spill code and re-scheduling when a loop
//! exceeds the budget), HRMS vs Top-Down.
//!
//! Usage: `cargo run --release -p hrms-bench --bin fig14 [num_loops]`

fn main() {
    // Spilling re-schedules loops repeatedly, so the default loop count is
    // reduced; pass an explicit count (e.g. 1258) for the full run.
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let loops = hrms_workloads::synthetic::perfect_club_like_sized(count);
    let points = hrms_bench::figures::figure14(&loops, &[None, Some(64), Some(32)]);
    println!("Figure 14 — execution cycles with unlimited / 64 / 32 registers ({count} loops)\n");
    println!("{}", hrms_bench::figures::render_figure14(&points));
    println!("(paper: HRMS ≈43% faster with 64 registers and ≈21% faster with 32 registers;");
    println!(" HRMS at 32 registers runs about as fast as Top-Down at 64)");
}
