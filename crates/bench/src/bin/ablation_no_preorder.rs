//! Ablation of the pre-ordering phase: HRMS vs the same bidirectional
//! scheduling step driven by plain program order.
//!
//! Usage: `cargo run --release -p hrms-bench --bin ablation_no_preorder [num_loops]`

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let loops = hrms_workloads::synthetic::perfect_club_like_sized(count);
    let machine = hrms_machine::presets::perfect_club();
    let (hrms, program) = hrms_bench::ablation::preorder_ablation(&loops, &machine);
    println!("Ablation — hypernode pre-ordering vs program order ({count} loops)\n");
    println!(
        "{}",
        hrms_bench::ablation::render_pair("hypernode reduction", &hrms, "program order", &program)
    );
}
