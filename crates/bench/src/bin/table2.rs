//! Regenerates Table 2 of the paper: for how many loops HRMS obtains a
//! better / equal / worse II (and buffers, at equal II) than SPILP, Slack
//! and FRLC.
//!
//! Usage: `cargo run --release -p hrms-bench --bin table2 [bb_budget]`

fn main() {
    let bb_budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let table = hrms_bench::tables::run_table1(&hrms_workloads::reference24::all(), bb_budget);
    println!("Table 2 — HRMS vs the other methods (24 loops)\n");
    println!("{}", table.summarize().render());
}
