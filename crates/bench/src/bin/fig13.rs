//! Regenerates Figure 13: dynamic cumulative distribution of the register
//! requirements of loop variants plus loop invariants.
//!
//! Usage: `cargo run --release -p hrms-bench --bin fig13 [num_loops]`

use hrms_bench::figures::{register_figure, FigureKind};

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hrms_workloads::synthetic::PERFECT_CLUB_LOOP_COUNT);
    let loops = hrms_workloads::synthetic::perfect_club_like_sized(count);
    let fig = register_figure(&loops, FigureKind::Fig13DynamicCombined);
    println!(
        "Figure 13 — dynamic cumulative register requirements, variants + invariants ({count} loops)\n"
    );
    println!("{}", fig.render());
    println!("(paper: ≈45% of the cycles are spent in loops needing more than 32 registers)");
    println!(
        "fraction of cycles needing more than 32 registers: HRMS {:.3}, Top-Down {:.3}",
        fig.hrms.fraction_above(32),
        fig.topdown.fraction_above(32)
    );
}
