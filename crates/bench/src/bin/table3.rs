//! Regenerates Table 3 of the paper: total scheduling time of the four
//! methods over the 24-loop suite.
//!
//! Usage: `cargo run --release -p hrms-bench --bin table3 [bb_budget]`

fn main() {
    let bb_budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    // Table 3 reports wall-clock scheduling times, so the loops run on a
    // single-worker engine: parallel workers would inflate every
    // measurement with core contention.
    let table = hrms_bench::tables::run_table1_on(
        &hrms_engine::BatchEngine::with_workers(1),
        &hrms_workloads::reference24::all(),
        bb_budget,
    );
    println!("Table 3 — total scheduling time (24 loops)\n");
    println!("{}", table.totals().render());
}
