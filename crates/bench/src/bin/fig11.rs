//! Regenerates Figure 11: static cumulative distribution of the register
//! requirements of loop variants, HRMS vs Top-Down.
//!
//! Usage: `cargo run --release -p hrms-bench --bin fig11 [num_loops]`

use hrms_bench::figures::{register_figure, FigureKind};

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hrms_workloads::synthetic::PERFECT_CLUB_LOOP_COUNT);
    let loops = hrms_workloads::synthetic::perfect_club_like_sized(count);
    let fig = register_figure(&loops, FigureKind::Fig11StaticVariants);
    println!(
        "Figure 11 — static cumulative register requirements of loop variants ({count} loops)\n"
    );
    println!("{}", fig.render());
    println!("(paper: on average HRMS needs 87% of the registers of the Top-Down scheduler)");
}
