//! Regenerates the aggregate statistics of Section 4.2: fraction of loops
//! scheduled at II = MII, mean II/MII, dynamic efficiency and the
//! pre-ordering share of the scheduling time, on the synthetic
//! Perfect-Club-like suite.
//!
//! Usage: `cargo run --release -p hrms-bench --bin section4_2_stats [num_loops]`

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hrms_workloads::synthetic::PERFECT_CLUB_LOOP_COUNT);
    let loops = hrms_workloads::synthetic::perfect_club_like_sized(count);
    // The phase-time split is a wall-clock measurement, so this report uses
    // a single-worker engine: parallel workers would inflate the timings
    // with core contention.
    let stats = hrms_bench::section42::run_on(&hrms_engine::BatchEngine::with_workers(1), &loops);
    println!("Section 4.2 statistics — synthetic Perfect-Club-like suite ({count} loops)\n");
    println!("{}", stats.render());
    println!("(paper: 97.5% of loops at II = MII, II = 1.01 × MII, 98.4% dynamic efficiency,");
    println!(" pre-ordering ≈ 9% of the scheduling time)");
}
