//! Regenerates Table 1 of the paper: II, buffers and scheduling time of
//! HRMS, the SPILP stand-in, Slack and FRLC on the 24-loop reference suite.
//!
//! Usage: `cargo run --release -p hrms-bench --bin table1 [bb_budget]`

fn main() {
    let bb_budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let table = hrms_bench::tables::run_table1(&hrms_workloads::reference24::all(), bb_budget);
    println!("Table 1 — 24-loop reference suite on the 4-FU machine");
    println!("(SPILP* = branch-and-bound stand-in, budget {bb_budget} placements per II)\n");
    println!("{}", table.render());
    let totals = table.totals();
    println!(
        "scheduling time: HRMS {:.3}s, SPILP* {:.3}s, Slack {:.3}s, FRLC {:.3}s",
        totals.hrms.as_secs_f64(),
        totals.spilp.as_secs_f64(),
        totals.slack.as_secs_f64(),
        totals.frlc.as_secs_f64()
    );
}
