//! Ablation of the initial-hypernode choice (paper footnote 1): the ordering
//! should produce roughly the same register requirements whatever the
//! starting node.
//!
//! Usage: `cargo run --release -p hrms-bench --bin ablation_start_node [num_loops]`

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let loops = hrms_workloads::synthetic::perfect_club_like_sized(count);
    let machine = hrms_machine::presets::perfect_club();
    let (first, last) = hrms_bench::ablation::start_node_ablation(&loops, &machine);
    println!("Ablation — initial hypernode choice ({count} loops)\n");
    println!(
        "{}",
        hrms_bench::ablation::render_pair("first-node start", &first, "last-node start", &last)
    );
}
