//! Regenerates Figure 12: dynamic (execution-time weighted) cumulative
//! distribution of the register requirements of loop variants.
//!
//! Usage: `cargo run --release -p hrms-bench --bin fig12 [num_loops]`

use hrms_bench::figures::{register_figure, FigureKind};

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hrms_workloads::synthetic::PERFECT_CLUB_LOOP_COUNT);
    let loops = hrms_workloads::synthetic::perfect_club_like_sized(count);
    let fig = register_figure(&loops, FigureKind::Fig12DynamicVariants);
    println!(
        "Figure 12 — dynamic cumulative register requirements of loop variants ({count} loops)\n"
    );
    println!("{}", fig.render());
}
