//! The aggregate statistics of Section 4.2: how often HRMS achieves the MII,
//! the mean II/MII ratio, dynamic efficiency, and the phase-time split
//! between pre-ordering and scheduling.

use std::time::Duration;

use hrms_core::HrmsScheduler;
use hrms_ddg::Ddg;
use hrms_engine::BatchEngine;
use hrms_machine::presets;

/// The Section 4.2 statistics over a loop suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Section42Stats {
    /// Number of loops scheduled.
    pub loops: usize,
    /// Loops whose II equals the MII (paper: 1227 of 1258, 97.5 %).
    pub optimal_ii: usize,
    /// Unweighted mean of II / MII (paper: 1.01).
    pub mean_ii_ratio: f64,
    /// Execution-time-weighted efficiency `Σ MII·iter / Σ II·iter`
    /// (paper: 98.4 %).
    pub dynamic_efficiency: f64,
    /// Total scheduling time (all phases).
    pub total_time: Duration,
    /// Time spent in the pre-ordering phase (paper: ≈ 9 % of the total).
    pub ordering_time: Duration,
    /// Time spent computing recurrence information and MII, approximated by
    /// everything that is neither ordering nor placement.
    pub scheduling_time: Duration,
}

impl Section42Stats {
    /// Fraction of loops scheduled at the optimal II.
    pub fn optimal_fraction(&self) -> f64 {
        self.optimal_ii as f64 / self.loops.max(1) as f64
    }

    /// Fraction of total time spent in the pre-ordering phase.
    pub fn ordering_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.ordering_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }

    /// Renders the statistics in the order the paper quotes them.
    pub fn render(&self) -> String {
        format!(
            "loops scheduled              : {}\n\
             loops with II = MII          : {} ({:.1}%)\n\
             mean II / MII                : {:.3}\n\
             dynamic efficiency           : {:.1}%\n\
             total scheduling time        : {:.3} s\n\
             pre-ordering share of time   : {:.1}%\n",
            self.loops,
            self.optimal_ii,
            100.0 * self.optimal_fraction(),
            self.mean_ii_ratio,
            100.0 * self.dynamic_efficiency,
            self.total_time.as_secs_f64(),
            100.0 * self.ordering_fraction(),
        )
    }
}

/// Schedules every loop with HRMS on the Section 4.2 machine and collects
/// the statistics, fanning the batch out across a [`BatchEngine`] worker
/// pool.
pub fn run(loops: &[Ddg]) -> Section42Stats {
    run_on(&BatchEngine::new(), loops)
}

/// [`run`] on a caller-provided engine (e.g. a single-worker engine for
/// contention-free phase-time measurements).
pub fn run_on(engine: &BatchEngine, loops: &[Ddg]) -> Section42Stats {
    let machine = presets::perfect_club();
    let scheduler = HrmsScheduler::new();
    let mut stats = Section42Stats {
        loops: loops.len(),
        optimal_ii: 0,
        mean_ii_ratio: 0.0,
        dynamic_efficiency: 0.0,
        total_time: Duration::ZERO,
        ordering_time: Duration::ZERO,
        scheduling_time: Duration::ZERO,
    };
    let mut ratio_sum = 0.0;
    let mut weighted_mii = 0u128;
    let mut weighted_ii = 0u128;
    // Schedule in parallel; fold the per-loop outcomes sequentially in input
    // order so the floating-point accumulation is deterministic.
    let outcomes = engine.must_schedule_batch(&scheduler, loops, &machine);
    for (ddg, outcome) in loops.iter().zip(outcomes) {
        if outcome.metrics.ii_is_optimal() {
            stats.optimal_ii += 1;
        }
        ratio_sum += outcome.metrics.ii_ratio();
        weighted_mii += u128::from(outcome.metrics.mii) * u128::from(ddg.iteration_count());
        weighted_ii += u128::from(outcome.metrics.ii) * u128::from(ddg.iteration_count());
        stats.total_time += outcome.elapsed;
        stats.ordering_time += outcome.ordering_time;
        stats.scheduling_time += outcome.elapsed.saturating_sub(outcome.ordering_time);
    }
    stats.mean_ii_ratio = ratio_sum / loops.len().max(1) as f64;
    stats.dynamic_efficiency = if weighted_ii == 0 {
        1.0
    } else {
        weighted_mii as f64 / weighted_ii as f64
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_workloads::synthetic::perfect_club_like_sized;

    #[test]
    fn statistics_match_the_papers_shape_on_a_sample() {
        let loops = perfect_club_like_sized(80);
        let stats = run(&loops);
        assert_eq!(stats.loops, 80);
        assert!(
            stats.optimal_fraction() >= 0.9,
            "paper: ≈97.5% of loops at II = MII, got {:.1}%",
            100.0 * stats.optimal_fraction()
        );
        assert!(stats.mean_ii_ratio < 1.1);
        assert!(stats.dynamic_efficiency > 0.9);
        // The paper's "pre-ordering is only 9% of the time" figure is a
        // release-mode measurement over the full suite (see EXPERIMENTS.md);
        // here we only check the accounting is consistent.
        assert!(stats.ordering_time <= stats.total_time);
        assert!((0.0..=1.0).contains(&stats.ordering_fraction()));
        assert!(stats.render().contains("II = MII"));
    }
}
