//! Figures 2–4 (motivating example) and 11–14 (register requirements and
//! performance under register budgets) of the paper.

use hrms_baselines::TopDownScheduler;
use hrms_core::HrmsScheduler;
use hrms_ddg::Ddg;
use hrms_machine::presets;
use hrms_modsched::{LifetimeAnalysis, ModuloScheduler};
use hrms_regalloc::{
    schedule_with_register_budget, CumulativeDistribution, PressureKind, SpillConfig,
};
use hrms_workloads::motivating;

use crate::must_schedule;

/// The Section 2.1 comparison (Figures 2, 3 and 4): register requirements of
/// the motivating example under the three schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotivatingExample {
    /// Registers needed by the Top-Down schedule (paper: 8).
    pub topdown_registers: u64,
    /// Registers needed by the Bottom-Up schedule (paper: 7).
    pub bottomup_registers: u64,
    /// Registers needed by the HRMS schedule (paper: 6).
    pub hrms_registers: u64,
    /// Rendered per-scheduler schedules and kernels.
    pub report: String,
}

/// Reproduces Figures 2–4.
pub fn motivating_example() -> MotivatingExample {
    let ddg = motivating::figure1();
    let machine = presets::general_purpose();
    let schedulers: Vec<Box<dyn ModuloScheduler>> = vec![
        Box::new(TopDownScheduler::new()),
        Box::new(hrms_baselines::BottomUpScheduler::new()),
        Box::new(HrmsScheduler::new()),
    ];
    let mut registers = Vec::new();
    let mut report = String::new();
    for s in &schedulers {
        let outcome = must_schedule(s.as_ref(), &ddg, &machine);
        let lt = LifetimeAnalysis::analyze(&ddg, &outcome.schedule);
        registers.push(lt.max_live());
        report.push_str(&format!(
            "== {} (II = {}) ==\none-iteration schedule:\n{}\nkernel:\n{}\nregisters (MaxLive): {}\n\n",
            s.name(),
            outcome.metrics.ii,
            outcome.schedule.render(&ddg),
            outcome.schedule.kernel().render(&ddg),
            lt.max_live(),
        ));
    }
    MotivatingExample {
        topdown_registers: registers[0],
        bottomup_registers: registers[1],
        hrms_registers: registers[2],
        report,
    }
}

/// Which figure a register-requirement distribution corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// Figure 11: static (per-loop) distribution, loop variants only.
    Fig11StaticVariants,
    /// Figure 12: dynamic (execution-time weighted), loop variants only.
    Fig12DynamicVariants,
    /// Figure 13: dynamic, variants plus invariants.
    Fig13DynamicCombined,
}

/// The cumulative register-requirement curves of one scheduler pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterFigure {
    /// Which figure this is.
    pub kind: FigureKind,
    /// HRMS distribution.
    pub hrms: CumulativeDistribution,
    /// Top-Down distribution.
    pub topdown: CumulativeDistribution,
}

impl RegisterFigure {
    /// Mean register requirement of HRMS divided by Top-Down's (the paper
    /// reports ≈ 0.87 for Figure 11).
    pub fn mean_ratio(&self) -> f64 {
        if self.topdown.mean() == 0.0 {
            1.0
        } else {
            self.hrms.mean() / self.topdown.mean()
        }
    }

    /// Renders both cumulative curves at a fixed set of register counts.
    pub fn render(&self) -> String {
        let points = [4u64, 8, 12, 16, 24, 32, 48, 64, 96, 128];
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|&r| {
                vec![
                    r.to_string(),
                    format!("{:.3}", self.hrms.fraction_at_or_below(r)),
                    format!("{:.3}", self.topdown.fraction_at_or_below(r)),
                ]
            })
            .collect();
        format!(
            "{}\nmean registers: HRMS {:.2}, Top-Down {:.2} (ratio {:.3})\n",
            crate::render_table(&["registers", "HRMS cum.", "Top-Down cum."], &rows),
            self.hrms.mean(),
            self.topdown.mean(),
            self.mean_ratio()
        )
    }
}

/// Schedules every loop of `loops` with HRMS and Top-Down on the Section 4.2
/// machine and builds the requested register-requirement distribution.
pub fn register_figure(loops: &[Ddg], kind: FigureKind) -> RegisterFigure {
    let machine = presets::perfect_club();
    let hrms = HrmsScheduler::new();
    let topdown = TopDownScheduler::new();
    let mut hrms_samples = Vec::new();
    let mut td_samples = Vec::new();
    for ddg in loops {
        let weight = match kind {
            FigureKind::Fig11StaticVariants => 1.0,
            FigureKind::Fig12DynamicVariants | FigureKind::Fig13DynamicCombined => {
                ddg.iteration_count() as f64
            }
        };
        for (scheduler, samples) in [
            (&hrms as &dyn ModuloScheduler, &mut hrms_samples),
            (&topdown as &dyn ModuloScheduler, &mut td_samples),
        ] {
            let outcome = must_schedule(scheduler, ddg, &machine);
            let lt = LifetimeAnalysis::analyze(ddg, &outcome.schedule);
            let regs = match kind {
                FigureKind::Fig13DynamicCombined => lt.max_live_with_invariants(),
                _ => lt.max_live(),
            };
            // Dynamic figures weight by execution time (II × iterations).
            let w = match kind {
                FigureKind::Fig11StaticVariants => weight,
                _ => weight * f64::from(outcome.metrics.ii),
            };
            samples.push((regs, w));
        }
    }
    RegisterFigure {
        kind,
        hrms: CumulativeDistribution::from_samples(hrms_samples),
        topdown: CumulativeDistribution::from_samples(td_samples),
    }
}

/// One bar group of Figure 14: total execution cycles with a given number of
/// available registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig14Point {
    /// Register budget (`None` = unlimited).
    pub registers: Option<u64>,
    /// Total cycles over the whole suite for HRMS.
    pub hrms_cycles: u64,
    /// Total cycles for Top-Down.
    pub topdown_cycles: u64,
    /// Number of loops that needed spill code under HRMS.
    pub hrms_spilled_loops: usize,
    /// Number of loops that needed spill code under Top-Down.
    pub topdown_spilled_loops: usize,
}

impl Fig14Point {
    /// Speedup of HRMS over Top-Down at this register budget.
    pub fn speedup(&self) -> f64 {
        self.topdown_cycles as f64 / self.hrms_cycles.max(1) as f64
    }
}

/// Figure 14: execution time of the whole suite with unlimited, 64 and 32
/// registers (loop variants plus invariants; spill code and re-scheduling
/// when over budget).
pub fn figure14(loops: &[Ddg], budgets: &[Option<u64>]) -> Vec<Fig14Point> {
    let machine = presets::perfect_club();
    let hrms = HrmsScheduler::new();
    let topdown = TopDownScheduler::new();
    budgets
        .iter()
        .map(|&budget| {
            let mut point = Fig14Point {
                registers: budget,
                hrms_cycles: 0,
                topdown_cycles: 0,
                hrms_spilled_loops: 0,
                topdown_spilled_loops: 0,
            };
            for ddg in loops {
                for (scheduler, cycles, spilled) in [
                    (
                        &hrms as &dyn ModuloScheduler,
                        &mut point.hrms_cycles,
                        &mut point.hrms_spilled_loops,
                    ),
                    (
                        &topdown as &dyn ModuloScheduler,
                        &mut point.topdown_cycles,
                        &mut point.topdown_spilled_loops,
                    ),
                ] {
                    let (ii, did_spill) = match budget {
                        None => (must_schedule(scheduler, ddg, &machine).metrics.ii, false),
                        Some(regs) => {
                            let result = schedule_with_register_budget(
                                ddg,
                                &machine,
                                scheduler,
                                &SpillConfig {
                                    registers: regs,
                                    kind: PressureKind::VariantsAndInvariants,
                                    max_rounds: 32,
                                },
                            )
                            .unwrap_or_else(|e| {
                                panic!("spill scheduling failed on `{}`: {e}", ddg.name())
                            });
                            (result.outcome.metrics.ii, result.spilled_values > 0)
                        }
                    };
                    *cycles += u64::from(ii) * ddg.iteration_count();
                    if did_spill {
                        *spilled += 1;
                    }
                }
            }
            point
        })
        .collect()
}

/// Renders the Figure 14 points.
pub fn render_figure14(points: &[Fig14Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.registers
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "inf".to_string()),
                p.hrms_cycles.to_string(),
                p.topdown_cycles.to_string(),
                format!("{:.3}", p.speedup()),
                p.hrms_spilled_loops.to_string(),
                p.topdown_spilled_loops.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "registers",
            "HRMS cycles",
            "Top-Down cycles",
            "HRMS speedup",
            "HRMS spilled loops",
            "TD spilled loops",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_workloads::synthetic::perfect_club_like_sized;

    #[test]
    fn motivating_example_matches_the_paper_ordering() {
        let m = motivating_example();
        assert_eq!(m.hrms_registers, 6, "paper: HRMS needs 6 registers");
        assert!(m.topdown_registers > m.hrms_registers);
        assert!(m.bottomup_registers >= m.hrms_registers);
        assert!(m.report.contains("HRMS"));
        assert!(m.report.contains("Top-Down"));
    }

    #[test]
    fn register_figures_show_hrms_needing_fewer_registers() {
        let loops = perfect_club_like_sized(40);
        for kind in [
            FigureKind::Fig11StaticVariants,
            FigureKind::Fig12DynamicVariants,
            FigureKind::Fig13DynamicCombined,
        ] {
            let fig = register_figure(&loops, kind);
            assert!(
                fig.mean_ratio() <= 1.02,
                "{kind:?}: HRMS should not need more registers on average (ratio {})",
                fig.mean_ratio()
            );
            assert!(!fig.render().is_empty());
        }
    }

    #[test]
    fn figure14_speedup_does_not_decrease_when_registers_shrink() {
        let loops = perfect_club_like_sized(25);
        let points = figure14(&loops, &[None, Some(64), Some(32)]);
        assert_eq!(points.len(), 3);
        // With unlimited registers both schedulers achieve (nearly) the same
        // cycles; with fewer registers HRMS's advantage can only grow.
        let unlimited = points[0].speedup();
        let r32 = points[2].speedup();
        assert!(r32 + 1e-9 >= unlimited, "speedup {unlimited} -> {r32}");
        assert!(render_figure14(&points).contains("inf"));
    }
}
