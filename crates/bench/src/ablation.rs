//! Ablations of the design choices called out in DESIGN.md:
//!
//! * the paper's footnote 1 — the ordering quality should be largely
//!   independent of the initial hypernode choice;
//! * the contribution of the pre-ordering phase — scheduling in plain
//!   program order with the same bidirectional placement rule should cost
//!   registers and/or II.

use hrms_core::{HrmsOptions, HrmsScheduler, OrderingMode, PreOrderOptions, StartNodePolicy};
use hrms_ddg::Ddg;
use hrms_machine::Machine;

use crate::must_schedule;

/// Aggregate results of one scheduler variant over a loop suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantResult {
    /// Sum of achieved IIs.
    pub total_ii: u64,
    /// Sum of register requirements (loop variants).
    pub total_max_live: u64,
    /// Sum of buffer requirements.
    pub total_buffers: u64,
    /// Number of loops scheduled at II = MII.
    pub optimal_ii: usize,
}

/// Runs one HRMS variant over the loops.
pub fn run_variant(loops: &[Ddg], machine: &Machine, options: HrmsOptions) -> VariantResult {
    let scheduler = HrmsScheduler::with_options(options);
    let mut result = VariantResult {
        total_ii: 0,
        total_max_live: 0,
        total_buffers: 0,
        optimal_ii: 0,
    };
    for ddg in loops {
        let outcome = must_schedule(&scheduler, ddg, machine);
        result.total_ii += u64::from(outcome.metrics.ii);
        result.total_max_live += outcome.metrics.max_live;
        result.total_buffers += outcome.metrics.buffers;
        if outcome.metrics.ii_is_optimal() {
            result.optimal_ii += 1;
        }
    }
    result
}

/// The start-node ablation (paper footnote 1): default (first node in
/// program order) vs last-node start.
pub fn start_node_ablation(loops: &[Ddg], machine: &Machine) -> (VariantResult, VariantResult) {
    let first = run_variant(loops, machine, HrmsOptions::default());
    let last = run_variant(
        loops,
        machine,
        HrmsOptions {
            preorder: PreOrderOptions {
                start_node: StartNodePolicy::LastInProgramOrder,
            },
            ..HrmsOptions::default()
        },
    );
    (first, last)
}

/// The pre-ordering ablation: hypernode reduction vs program order.
pub fn preorder_ablation(loops: &[Ddg], machine: &Machine) -> (VariantResult, VariantResult) {
    let hrms = run_variant(loops, machine, HrmsOptions::default());
    let program_order = run_variant(
        loops,
        machine,
        HrmsOptions {
            ordering: OrderingMode::ProgramOrder,
            ..HrmsOptions::default()
        },
    );
    (hrms, program_order)
}

/// Renders an ablation pair.
pub fn render_pair(label_a: &str, a: &VariantResult, label_b: &str, b: &VariantResult) -> String {
    let row = |label: &str, r: &VariantResult| {
        vec![
            label.to_string(),
            r.total_ii.to_string(),
            r.optimal_ii.to_string(),
            r.total_max_live.to_string(),
            r.total_buffers.to_string(),
        ]
    };
    crate::render_table(
        &["variant", "Σ II", "# II=MII", "Σ MaxLive", "Σ buffers"],
        &[row(label_a, a), row(label_b, b)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_machine::presets;
    use hrms_workloads::synthetic::perfect_club_like_sized;

    #[test]
    fn start_node_choice_barely_matters() {
        let loops = perfect_club_like_sized(30);
        let m = presets::perfect_club();
        let (first, last) = start_node_ablation(&loops, &m);
        // Footnote 1 of the paper: approximately the same register
        // requirements regardless of the starting node.
        let ratio = first.total_max_live as f64 / last.total_max_live.max(1) as f64;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "start-node choice changed registers by more than 25% (ratio {ratio})"
        );
        assert!(!render_pair("first", &first, "last", &last).is_empty());
    }

    #[test]
    fn preordering_pays_for_itself() {
        let loops = perfect_club_like_sized(30);
        let m = presets::perfect_club();
        let (hrms, program) = preorder_ablation(&loops, &m);
        // Program order is itself a reasonable data-flow order for generated
        // loops, so the gap can be small either way on a small sample; the
        // hypernode ordering must at least stay in the same ballpark while
        // matching the II quality (the decisive comparison against the
        // register-oblivious Top-Down scheduler lives in `figures`).
        assert!(
            (hrms.total_max_live as f64) <= (program.total_max_live as f64) * 1.10,
            "hypernode ordering needs far more registers ({} vs {})",
            hrms.total_max_live,
            program.total_max_live
        );
        assert!(hrms.optimal_ii >= program.optimal_ii.saturating_sub(2));
    }
}
