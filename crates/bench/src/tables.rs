//! Tables 1–3 of the paper: the 24-loop comparison of HRMS against the
//! Slack, FRLC and SPILP(-stand-in) schedulers.

use std::time::Duration;

use hrms_baselines::{BranchAndBoundScheduler, FrlcScheduler, SlackScheduler};
use hrms_core::HrmsScheduler;
use hrms_ddg::Ddg;
use hrms_engine::BatchEngine;
use hrms_machine::{presets, Machine};
use hrms_modsched::{ModuloScheduler, SchedulerConfig};
use hrms_workloads::reference24;

use crate::must_schedule;

/// The measurements of one scheduler on one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Buffer requirement (the Table 1 metric).
    pub buffers: u64,
    /// Wall-clock scheduling time.
    pub time: Duration,
}

/// One row of Table 1 (one loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Loop name.
    pub name: String,
    /// Number of operations.
    pub ops: usize,
    /// The loop's MII on the Table-1 machine.
    pub mii: u32,
    /// HRMS result.
    pub hrms: Cell,
    /// Branch-and-bound (SPILP stand-in) result.
    pub spilp: Cell,
    /// Slack result.
    pub slack: Cell,
    /// FRLC result.
    pub frlc: Cell,
}

/// The full Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// One row per loop of the reference suite.
    pub rows: Vec<Table1Row>,
}

/// Summary counts comparing HRMS against one other method (one column group
/// of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Comparison {
    /// Loops where HRMS achieves a lower II.
    pub ii_better: usize,
    /// Loops with equal II.
    pub ii_equal: usize,
    /// Loops where HRMS has a higher II.
    pub ii_worse: usize,
    /// Among equal-II loops: HRMS needs fewer buffers.
    pub buf_better: usize,
    /// Among equal-II loops: equal buffers.
    pub buf_equal: usize,
    /// Among equal-II loops: HRMS needs more buffers.
    pub buf_worse: usize,
}

/// Table 2: HRMS vs each of the other three methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2 {
    /// HRMS vs the SPILP stand-in.
    pub vs_spilp: Comparison,
    /// HRMS vs Slack.
    pub vs_slack: Comparison,
    /// HRMS vs FRLC.
    pub vs_frlc: Comparison,
}

/// Table 3: total scheduling time per method over the whole suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3 {
    /// Total HRMS time.
    pub hrms: Duration,
    /// Total SPILP-stand-in time.
    pub spilp: Duration,
    /// Total Slack time.
    pub slack: Duration,
    /// Total FRLC time.
    pub frlc: Duration,
}

/// The machine model of Table 1 (1 FP add, 1 FP mul, 1 FP div, 1 load/store).
pub fn table1_machine() -> Machine {
    presets::govindarajan()
}

/// Runs the Table 1 experiment on the given loops (pass
/// [`reference24::all`] for the full table). `bb_budget` caps the
/// branch-and-bound search per II (the default of
/// [`SchedulerConfig::default`] is exact for all 24 loops but slow; the
/// quick harness uses a smaller cap).
///
/// The loops are scheduled in parallel through [`BatchEngine`]; rows come
/// back in input order, so the rendered table is byte-stable. Note that the
/// per-cell `time` fields are wall-clock measurements and can be mildly
/// inflated by contention when many loops are in flight.
pub fn run_table1(loops: &[Ddg], bb_budget: u64) -> Table1 {
    run_table1_on(&BatchEngine::new(), loops, bb_budget)
}

/// [`run_table1`] on a caller-provided engine (e.g. a single-worker engine
/// for contention-free timing measurements).
pub fn run_table1_on(engine: &BatchEngine, loops: &[Ddg], bb_budget: u64) -> Table1 {
    let machine = table1_machine();
    let hrms = HrmsScheduler::new();
    let spilp = BranchAndBoundScheduler {
        config: SchedulerConfig {
            budget_per_ii: bb_budget,
            ..SchedulerConfig::default()
        },
    };
    let slack = SlackScheduler::new();
    let frlc = FrlcScheduler::new();

    let rows = engine.map(loops, |_, ddg| {
        let cell = |s: &dyn ModuloScheduler| {
            let outcome = must_schedule(s, ddg, &machine);
            Cell {
                ii: outcome.metrics.ii,
                buffers: outcome.metrics.buffers,
                time: outcome.elapsed,
            }
        };
        let hrms_outcome = must_schedule(&hrms, ddg, &machine);
        let mii = hrms_outcome.metrics.mii;
        let hrms_cell = Cell {
            ii: hrms_outcome.metrics.ii,
            buffers: hrms_outcome.metrics.buffers,
            time: hrms_outcome.elapsed,
        };
        Table1Row {
            name: ddg.name().to_string(),
            ops: ddg.num_nodes(),
            mii,
            hrms: hrms_cell,
            spilp: cell(&spilp),
            slack: cell(&slack),
            frlc: cell(&frlc),
        }
    });
    Table1 { rows }
}

/// Runs Table 1 on the full 24-loop reference suite with the default
/// branch-and-bound budget.
pub fn run_table1_default() -> Table1 {
    run_table1(&reference24::all(), 100_000)
}

impl Table1 {
    /// Derives Table 2 from the per-loop rows.
    pub fn summarize(&self) -> Table2 {
        let compare = |other: fn(&Table1Row) -> &Cell| {
            let mut c = Comparison::default();
            for row in &self.rows {
                let o = other(row);
                match row.hrms.ii.cmp(&o.ii) {
                    std::cmp::Ordering::Less => c.ii_better += 1,
                    std::cmp::Ordering::Greater => c.ii_worse += 1,
                    std::cmp::Ordering::Equal => {
                        c.ii_equal += 1;
                        match row.hrms.buffers.cmp(&o.buffers) {
                            std::cmp::Ordering::Less => c.buf_better += 1,
                            std::cmp::Ordering::Greater => c.buf_worse += 1,
                            std::cmp::Ordering::Equal => c.buf_equal += 1,
                        }
                    }
                }
            }
            c
        };
        Table2 {
            vs_spilp: compare(|r| &r.spilp),
            vs_slack: compare(|r| &r.slack),
            vs_frlc: compare(|r| &r.frlc),
        }
    }

    /// Derives Table 3 (total scheduling times).
    pub fn totals(&self) -> Table3 {
        let sum = |f: fn(&Table1Row) -> Duration| self.rows.iter().map(f).sum();
        Table3 {
            hrms: sum(|r| r.hrms.time),
            spilp: sum(|r| r.spilp.time),
            slack: sum(|r| r.slack.time),
            frlc: sum(|r| r.frlc.time),
        }
    }

    /// Renders the table as aligned text (the format printed by
    /// `cargo run -p hrms-bench --bin table1`).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.ops.to_string(),
                    r.mii.to_string(),
                    r.hrms.ii.to_string(),
                    r.hrms.buffers.to_string(),
                    r.spilp.ii.to_string(),
                    r.spilp.buffers.to_string(),
                    r.slack.ii.to_string(),
                    r.slack.buffers.to_string(),
                    r.frlc.ii.to_string(),
                    r.frlc.buffers.to_string(),
                ]
            })
            .collect();
        crate::render_table(
            &[
                "loop",
                "ops",
                "MII",
                "HRMS II",
                "buf",
                "SPILP* II",
                "buf",
                "Slack II",
                "buf",
                "FRLC II",
                "buf",
            ],
            &rows,
        )
    }
}

impl Table2 {
    /// Renders Table 2 as aligned text.
    pub fn render(&self) -> String {
        let row = |name: &str, c: &Comparison| {
            vec![
                name.to_string(),
                c.ii_better.to_string(),
                c.ii_equal.to_string(),
                c.ii_worse.to_string(),
                c.buf_better.to_string(),
                c.buf_equal.to_string(),
                c.buf_worse.to_string(),
            ]
        };
        crate::render_table(
            &["vs", "II <", "II =", "II >", "Buf <", "Buf =", "Buf >"],
            &[
                row("SPILP*", &self.vs_spilp),
                row("Slack", &self.vs_slack),
                row("FRLC", &self.vs_frlc),
            ],
        )
    }
}

impl Table3 {
    /// Renders Table 3 as aligned text.
    pub fn render(&self) -> String {
        crate::render_table(
            &["method", "total scheduling time (s)"],
            &[
                vec![
                    "HRMS".to_string(),
                    format!("{:.3}", self.hrms.as_secs_f64()),
                ],
                vec![
                    "SPILP*".to_string(),
                    format!("{:.3}", self.spilp.as_secs_f64()),
                ],
                vec![
                    "Slack".to_string(),
                    format!("{:.3}", self.slack.as_secs_f64()),
                ],
                vec![
                    "FRLC".to_string(),
                    format!("{:.3}", self.frlc.as_secs_f64()),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed Table 1 run (first 6 loops, small search budget) keeps the
    /// test quick while still exercising every scheduler.
    fn small_table() -> Table1 {
        let loops = reference24::all().into_iter().take(6).collect::<Vec<_>>();
        run_table1(&loops, 5_000)
    }

    #[test]
    fn every_row_achieves_at_least_the_mii() {
        let t = small_table();
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            for cell in [&row.hrms, &row.spilp, &row.slack, &row.frlc] {
                assert!(cell.ii >= row.mii, "{}: II below MII", row.name);
            }
        }
    }

    #[test]
    fn hrms_never_loses_to_the_register_insensitive_heuristic_on_buffers_at_equal_ii() {
        let t = small_table();
        for row in &t.rows {
            if row.hrms.ii == row.frlc.ii {
                assert!(
                    row.hrms.buffers <= row.frlc.buffers + 1,
                    "{}: HRMS {} buffers vs FRLC {}",
                    row.name,
                    row.hrms.buffers,
                    row.frlc.buffers
                );
            }
        }
    }

    #[test]
    fn table2_counts_sum_to_the_number_of_loops() {
        let t = small_table();
        let t2 = t.summarize();
        for c in [t2.vs_spilp, t2.vs_slack, t2.vs_frlc] {
            assert_eq!(c.ii_better + c.ii_equal + c.ii_worse, t.rows.len());
            assert_eq!(c.buf_better + c.buf_equal + c.buf_worse, c.ii_equal);
        }
    }

    #[test]
    fn renders_are_nonempty_and_contain_headers() {
        let t = small_table();
        assert!(t.render().contains("HRMS II"));
        assert!(t.summarize().render().contains("II ="));
        assert!(t.totals().render().contains("total scheduling time"));
    }
}
