//! Benchmark and report harness for the HRMS reproduction.
//!
//! Each module regenerates one part of the paper's evaluation:
//!
//! * [`tables`] — Table 1 (per-loop II / buffers / time for HRMS, SPILP
//!   stand-in, Slack and FRLC on the 24-loop reference suite), Table 2 (the
//!   better/equal/worse summary) and Table 3 (total scheduling time);
//! * [`figures`] — the motivating-example figures (2–4) and the register
//!   requirement / execution-time figures (11–14) on the synthetic
//!   Perfect-Club-like suite;
//! * [`section42`] — the aggregate statistics quoted in Section 4.2
//!   (fraction of loops scheduled at MII, mean II/MII ratio, phase-time
//!   split);
//! * [`ablation`] — the design-choice ablations called out in DESIGN.md
//!   (initial hypernode selection, pre-ordering on/off).
//!
//! The binaries in `src/bin/` are thin wrappers that print these results;
//! the Criterion benches in `benches/` measure the compilation-time claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod section42;
pub mod tables;

use hrms_ddg::Ddg;
use hrms_machine::Machine;
use hrms_modsched::{ModuloScheduler, ScheduleOutcome};

/// Schedules one loop with one scheduler, panicking with a helpful message
/// on failure (the harness inputs are all known-schedulable).
pub fn must_schedule(
    scheduler: &dyn ModuloScheduler,
    ddg: &Ddg,
    machine: &Machine,
) -> ScheduleOutcome {
    scheduler.schedule_loop(ddg, machine).unwrap_or_else(|e| {
        panic!(
            "scheduler `{}` failed on loop `{}`: {e}",
            scheduler.name(),
            ddg.name()
        )
    })
}

/// Formats a fixed-width table from a header and rows (all pre-rendered
/// strings); used by every report binary so their output is uniform and easy
/// to diff against EXPERIMENTS.md.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&render_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_core::HrmsScheduler;
    use hrms_machine::presets;

    #[test]
    fn must_schedule_returns_an_outcome() {
        let g = hrms_workloads::motivating::figure1();
        let outcome = must_schedule(&HrmsScheduler::new(), &g, &presets::general_purpose());
        assert_eq!(outcome.metrics.ii, 2);
    }

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["loop", "II"],
            &[
                vec!["inner_product".to_string(), "2".to_string()],
                vec!["fir".to_string(), "17".to_string()],
            ],
        );
        assert!(table.contains("loop"));
        assert!(table.lines().count() == 4);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }
}
