//! Criterion benchmarks of the pre-ordering phase alone — backing the
//! Section 4.2 claim that ordering is a small fraction of the scheduling
//! time and scales well with loop size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_core::pre_order;
use hrms_ddg::LoopAnalysis;
use hrms_workloads::{motivating, GeneratorConfig, LoopGenerator};

fn bench_preorder_paper_examples(c: &mut Criterion) {
    let mut group = c.benchmark_group("preorder_paper_examples");
    for ddg in motivating::all() {
        group.bench_with_input(BenchmarkId::from_parameter(ddg.name()), &ddg, |b, ddg| {
            b.iter(|| pre_order(&LoopAnalysis::analyze(std::hint::black_box(ddg))))
        });
    }
    group.finish();
}

fn bench_preorder_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("preorder_scaling");
    for size in [16usize, 32, 64, 128] {
        let config = GeneratorConfig {
            min_ops: size,
            mean_ops: size as f64,
            max_ops: size,
            ..GeneratorConfig::default()
        };
        let ddg = LoopGenerator::new(7, config).next_loop();
        group.bench_with_input(BenchmarkId::from_parameter(size), &ddg, |b, ddg| {
            b.iter(|| pre_order(&LoopAnalysis::analyze(std::hint::black_box(ddg))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_preorder_paper_examples,
    bench_preorder_scaling
);
criterion_main!(benches);
