//! Criterion benchmarks of the graph substrate: SCCs, recurrence-circuit
//! enumeration, path search and MII computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_ddg::{scc, search_all_paths, NodeId, RecurrenceInfo};
use hrms_machine::presets;
use hrms_modsched::MiiInfo;
use hrms_workloads::{GeneratorConfig, LoopGenerator};

fn graphs() -> Vec<hrms_ddg::Ddg> {
    [24usize, 48, 96]
        .into_iter()
        .map(|size| {
            let config = GeneratorConfig {
                min_ops: size,
                mean_ops: size as f64,
                max_ops: size,
                ..GeneratorConfig::default()
            };
            LoopGenerator::new(13, config).next_loop()
        })
        .collect()
}

fn bench_scc_and_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_analysis");
    for ddg in graphs() {
        group.bench_with_input(
            BenchmarkId::new("tarjan_scc", ddg.num_nodes()),
            &ddg,
            |b, ddg| b.iter(|| scc::strongly_connected_components(std::hint::black_box(ddg))),
        );
        group.bench_with_input(
            BenchmarkId::new("recurrence_info", ddg.num_nodes()),
            &ddg,
            |b, ddg| b.iter(|| RecurrenceInfo::analyze(std::hint::black_box(ddg))),
        );
        group.bench_with_input(BenchmarkId::new("mii", ddg.num_nodes()), &ddg, |b, ddg| {
            let machine = presets::perfect_club();
            b.iter(|| {
                let la = hrms_ddg::LoopAnalysis::analyze(std::hint::black_box(ddg));
                MiiInfo::compute(&machine, &la).unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("search_all_paths", ddg.num_nodes()),
            &ddg,
            |b, ddg| {
                let seeds: Vec<NodeId> = vec![
                    NodeId(0),
                    NodeId((ddg.num_nodes() as u32) / 2),
                    NodeId(ddg.num_nodes() as u32 - 1),
                ];
                b.iter(|| search_all_paths(std::hint::black_box(ddg), &seeds))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scc_and_circuits);
criterion_main!(benches);
