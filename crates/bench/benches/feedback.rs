//! Feedback-rescheduling benchmark: one-shot HRMS against the
//! feedback-guided iterative rescheduler on the register-pressure suite.
//!
//! The suite's loops force dozens of overlapping lifetimes through the
//! late loop body, so one-shot schedules exceed the paper machines'
//! 32-register files and the feedback loop has real work to do: evaluate
//! the spill count, extract the pressure-critical subgraph, perturb the
//! pre-ordering and reschedule to a bounded fixpoint. The measured ratio
//! is the price of the feedback iterations (attempts × schedule cost plus
//! the spill evaluations); the property tier (`tests/feedback_property.rs`)
//! separately pins that the quality never regresses. CI runs this bench
//! with `-- --test` as a single-sample smoke check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_core::HrmsScheduler;
use hrms_machine::presets;
use hrms_modsched::{FeedbackConfig, IterativeRescheduler, ModuloScheduler};
use hrms_regalloc::BudgetSpillEvaluator;
use hrms_workloads::synthetic;

/// The feedback-wrapped HRMS scheduler exactly as the registry builds it
/// (regalloc-backed spill evaluator wired in).
fn feedback_hrms() -> IterativeRescheduler {
    IterativeRescheduler::new(Box::new(HrmsScheduler::new()), FeedbackConfig::default())
        .with_evaluator(Box::new(BudgetSpillEvaluator))
}

fn bench_one_shot_vs_feedback(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback");
    group.sample_size(10);
    let machine = presets::perfect_club();
    let one_shot = HrmsScheduler::new();
    let feedback = feedback_hrms();
    for ddg in synthetic::register_pressure_suite() {
        let name = format!("{}x{}", ddg.num_nodes(), ddg.name());
        group.bench_with_input(BenchmarkId::new("one_shot", &name), &ddg, |b, ddg| {
            b.iter(|| {
                one_shot
                    .schedule_loop(std::hint::black_box(ddg), &machine)
                    .expect("suite loops schedule")
            })
        });
        group.bench_with_input(BenchmarkId::new("feedback", &name), &ddg, |b, ddg| {
            b.iter(|| {
                feedback
                    .schedule_loop(std::hint::black_box(ddg), &machine)
                    .expect("suite loops schedule")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_shot_vs_feedback);
criterion_main!(benches);
