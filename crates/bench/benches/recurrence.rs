//! Recurrence-heavy stress benchmarks: the enumeration-free SCC-derived
//! recurrence analysis against Johnson's circuit enumeration on loop
//! bodies whose dense SCCs used to blow the enumeration budget, plus the
//! pre-ordering and the incremental per-II start times in the same regime.
//!
//! This is the benchmark backing the enumeration-free acceptance
//! criterion: the 500–2000-op recurrence-heavy preset must be analysed
//! and pre-ordered with **no** circuit-enumeration budget in sight, at a
//! small fraction of what even a *truncated* enumeration costs (the
//! measured margins are recorded in docs/ARCHITECTURE.md). CI runs this
//! bench with `-- --test` as a single-sample smoke check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_core::pre_order;
use hrms_ddg::{CycleRatios, IncrementalStarts, LoopAnalysis, RecurrenceGroups, RecurrenceInfo};
use hrms_workloads::synthetic;

fn bench_recurrence_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("recurrence_analysis");
    group.sample_size(10);
    for ddg in synthetic::recurrence_heavy_suite() {
        let ops = ddg.num_nodes();
        group.bench_with_input(BenchmarkId::new("scc_groups", ops), &ddg, |b, ddg| {
            b.iter(|| RecurrenceGroups::analyze(std::hint::black_box(ddg)))
        });
        // The per-node cycle-ratio pass alone (the groups above are
        // assembled from it, so this isolates the new analysis cost).
        group.bench_with_input(BenchmarkId::new("cycle_ratios", ops), &ddg, |b, ddg| {
            b.iter(|| CycleRatios::analyze(std::hint::black_box(ddg)))
        });
        // The old default path on the same loop. The budget caps the
        // enumeration at 10k circuits — these loops span astronomically
        // more — so this measures the *truncated* (and therefore
        // incomplete) analysis; the complete one does not terminate in
        // any reasonable time, which is the point of the comparison.
        group.bench_with_input(
            BenchmarkId::new("johnson_truncated_10k", ops),
            &ddg,
            |b, ddg| {
                b.iter(|| RecurrenceInfo::analyze_with_budget(std::hint::black_box(ddg), 10_000))
            },
        );
    }
    group.finish();
}

fn bench_interleaved_suite(c: &mut Criterion) {
    // The interleaved-recurrence differential corpus: small loops whose
    // circuits thread backward-edge *pairs*. Measures the exact
    // cycle-ratio ranking against the complete enumeration on the same
    // loops (both are fast here — the point is the per-loop margin and a
    // CI smoke-check that the exact path stays cheap on its own corpus).
    let mut group = c.benchmark_group("interleaved_recurrence");
    group.sample_size(10);
    for ddg in synthetic::interleaved_recurrence_suite() {
        let ops = ddg.num_nodes();
        group.bench_with_input(BenchmarkId::new("cycle_ratios", ops), &ddg, |b, ddg| {
            b.iter(|| CycleRatios::analyze(std::hint::black_box(ddg)))
        });
        group.bench_with_input(BenchmarkId::new("johnson_complete", ops), &ddg, |b, ddg| {
            b.iter(|| RecurrenceInfo::analyze_with_budget(std::hint::black_box(ddg), 500_000))
        });
    }
    group.finish();
}

fn bench_recurrence_heavy_preorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("recurrence_preorder");
    group.sample_size(10);
    // End-to-end pre-ordering (recurrence groups + hypernode reduction) on
    // the dense-SCC loops the classic stress preset had to avoid.
    for ddg in synthetic::recurrence_heavy_suite() {
        let ops = ddg.num_nodes();
        group.bench_with_input(BenchmarkId::new("pre_order", ops), &ddg, |b, ddg| {
            b.iter(|| pre_order(&hrms_ddg::LoopAnalysis::analyze(std::hint::black_box(ddg))))
        });
    }
    group.finish();
}

fn bench_incremental_starts(c: &mut Criterion) {
    let mut group = c.benchmark_group("recurrence_escalation_starts");
    group.sample_size(10);
    // Ten II-escalation steps of both start-time solutions: incremental
    // warm-started updates vs from-scratch Bellman-Ford at every II.
    for ddg in synthetic::recurrence_heavy_suite() {
        let ops = ddg.num_nodes();
        let la = LoopAnalysis::analyze(&ddg);
        let rec_mii = la.rec_mii().expect("suite loops are valid");
        let n = ddg.num_nodes();
        group.bench_with_input(BenchmarkId::new("incremental", ops), &ddg, |b, _| {
            let edges = la.dep_edges();
            b.iter(|| {
                let mut inc =
                    IncrementalStarts::new(n, edges, rec_mii).expect("feasible at RecMII");
                for ii in rec_mii + 1..rec_mii + 10 {
                    assert!(inc.advance(edges, ii));
                }
                inc
            })
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", ops), &ddg, |b, _| {
            let edges = la.dep_edges();
            b.iter(|| {
                let mut last = None;
                for ii in rec_mii..rec_mii + 10 {
                    let est = hrms_ddg::analysis::longest_paths(n, edges, ii)
                        .expect("feasible at RecMII");
                    let horizon = est.iter().copied().max().unwrap_or(0);
                    last = hrms_ddg::analysis::latest_starts_from(n, edges, ii, horizon);
                }
                last
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_recurrence_analysis,
    bench_interleaved_suite,
    bench_recurrence_heavy_preorder,
    bench_incremental_starts
);
criterion_main!(benches);
