//! Large-loop stress benchmarks: the dense pre-ordering fast path against
//! the preserved legacy implementation on 200–2000-operation loop bodies,
//! and batch-scheduling throughput of the parallel engine.
//!
//! This is the benchmark backing the dense-representation acceptance
//! criterion: on loops of ≥ 500 operations, `pre_order` end-to-end must be
//! at least 2× faster than the legacy hash-based path (the measured margin
//! is recorded in the README's Performance section). CI runs this bench
//! with `-- --test` as a single-sample smoke check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_core::{pre_order, pre_order_legacy, HrmsScheduler};
use hrms_engine::BatchEngine;
use hrms_machine::presets;
use hrms_workloads::synthetic;

fn bench_preorder_dense_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("stress_preorder");
    group.sample_size(30);
    for ddg in synthetic::stress_suite() {
        let ops = ddg.num_nodes();
        group.bench_with_input(BenchmarkId::new("dense", ops), &ddg, |b, ddg| {
            b.iter(|| pre_order(&hrms_ddg::LoopAnalysis::analyze(std::hint::black_box(ddg))))
        });
        group.bench_with_input(BenchmarkId::new("legacy", ops), &ddg, |b, ddg| {
            b.iter(|| pre_order_legacy(std::hint::black_box(ddg)))
        });
    }
    group.finish();
}

fn bench_batch_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("stress_batch_engine");
    group.sample_size(10);
    // A mixed batch of mid-size loops: enough work per item that the scoped
    // worker pool's speedup is visible over the spawn overhead.
    let loops = synthetic::perfect_club_like_sized(192);
    let machine = presets::perfect_club();
    let scheduler = HrmsScheduler::new();
    for workers in [1usize, 2, 4, 8] {
        let engine = BatchEngine::with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("schedule_batch", workers),
            &loops,
            |b, loops| {
                b.iter(|| {
                    engine.must_schedule_batch(&scheduler, std::hint::black_box(loops), &machine)
                })
            },
        );
    }
    group.finish();
}

fn bench_stress_suite_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("stress_schedule");
    group.sample_size(10);
    // End-to-end scheduling of the large-loop stress suite through the
    // engine (pre-ordering + placement, all loops in parallel).
    let loops = synthetic::stress_suite();
    let machine = presets::perfect_club();
    let scheduler = HrmsScheduler::new();
    let engine = BatchEngine::new();
    group.bench_function("stress_suite_parallel", |b| {
        b.iter(|| engine.must_schedule_batch(&scheduler, std::hint::black_box(&loops), &machine))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_preorder_dense_vs_legacy,
    bench_batch_engine,
    bench_stress_suite_scheduling
);
criterion_main!(benches);
