//! Placement micro-benchmark: the dense scheduling step against the
//! `Ddg`-walking reference path on 200–2000-operation loop bodies.
//!
//! This is the benchmark backing the dense-placement acceptance criterion:
//! one pass of the scheduling step (Section 3.3) at a fixed, feasible II
//! over the dense placement arcs of the shared per-loop analysis
//! (`schedule_at_ii_with`) must beat the pre-refactor path that walks the
//! `Ddg` edge lists and resolves dependence latencies per edge
//! (`schedule_at_ii_reference`) on loops of ≥ 500 operations; the measured
//! margin is recorded in `docs/ARCHITECTURE.md`'s Performance section. The
//! analysis-construction group measures the one-off cost of building the
//! shared cache so the placement win can be judged net of it. CI runs this
//! bench with `-- --test` as a single-sample smoke check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_core::{schedule_at_ii_reference, schedule_at_ii_with, HrmsScheduler};
use hrms_ddg::{Ddg, LoopAnalysis, NodeId};
use hrms_machine::presets;
use hrms_modsched::MiiInfo;
use hrms_workloads::synthetic;

/// The first II at or above the MII that the scheduling step accepts for
/// this order (found once, outside the measured region).
fn first_feasible_ii(ddg: &Ddg, la: &LoopAnalysis<'_>, order: &[NodeId]) -> u32 {
    let machine = presets::perfect_club();
    let mii = MiiInfo::compute(&machine, la)
        .unwrap_or_else(|e| panic!("stress loop `{}` invalid: {e}", ddg.name()))
        .mii();
    (mii..mii + 4096)
        .find(|&ii| schedule_at_ii_with(ddg, &machine, la.placement(), order, ii).is_some())
        .unwrap_or_else(|| panic!("stress loop `{}` never scheduled", ddg.name()))
}

fn bench_placement_dense_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("stress_placement");
    group.sample_size(30);
    let machine = presets::perfect_club();
    for ddg in synthetic::stress_suite() {
        let ops = ddg.num_nodes();
        let la = LoopAnalysis::analyze(&ddg);
        let order = HrmsScheduler::new().pre_order(&ddg).order;
        let ii = first_feasible_ii(&ddg, &la, &order);
        group.bench_with_input(BenchmarkId::new("dense", ops), &ddg, |b, ddg| {
            b.iter(|| {
                schedule_at_ii_with(
                    std::hint::black_box(ddg),
                    &machine,
                    la.placement(),
                    &order,
                    ii,
                )
                .expect("ii was verified feasible")
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", ops), &ddg, |b, ddg| {
            b.iter(|| {
                schedule_at_ii_reference(std::hint::black_box(ddg), &machine, &order, ii)
                    .expect("both paths accept the same IIs")
            })
        });
    }
    group.finish();
}

fn bench_loop_analysis_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("stress_loop_analysis");
    group.sample_size(30);
    for ddg in synthetic::stress_suite() {
        let ops = ddg.num_nodes();
        group.bench_with_input(BenchmarkId::new("analyze", ops), &ddg, |b, ddg| {
            b.iter(|| LoopAnalysis::analyze(std::hint::black_box(ddg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_placement_dense_vs_reference,
    bench_loop_analysis_construction
);
criterion_main!(benches);
