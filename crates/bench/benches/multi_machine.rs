//! Multi-machine scheduling benchmark: one loop scheduled on every
//! machine preset, with the machine-independent analysis either rebuilt
//! from scratch per machine (the old `schedule_loop` path) or built once
//! and shared across all machines through an [`hrms_ddg::LoopCore`] (the
//! `schedule_loop_with_core` path the engine's `schedule_matrix` uses).
//!
//! This is the benchmark backing the core/overlay acceptance criterion:
//! on a ≥ 500-operation loop, the shared-core sweep over the four presets
//! must beat the from-scratch sweep — the Tarjan/λ-search/recurrence
//! analysis is paid once instead of once per machine. CI runs this bench
//! with `-- --test` as a single-sample smoke check.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_core::HrmsScheduler;
use hrms_ddg::LoopCore;
use hrms_machine::presets;
use hrms_modsched::ModuloScheduler;
use hrms_workloads::{synthetic, LoopGenerator};

fn bench_one_loop_across_presets(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_machine");
    group.sample_size(10);
    let scheduler = HrmsScheduler::new();
    let machines = presets::all();
    // A ≥ 500-operation loop: large enough that the machine-independent
    // analysis dominates the per-machine overlay.
    for size in [500usize, 1000] {
        let ddg =
            LoopGenerator::new(0xB5 ^ size as u64, synthetic::stress_config(size)).next_loop();
        group.bench_with_input(BenchmarkId::new("from_scratch", size), &ddg, |b, ddg| {
            b.iter(|| {
                for machine in &machines {
                    scheduler
                        .schedule_loop(std::hint::black_box(ddg), machine)
                        .expect("stress loop schedules");
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("shared_core", size), &ddg, |b, ddg| {
            b.iter(|| {
                let core = Arc::new(LoopCore::new());
                for machine in &machines {
                    scheduler
                        .schedule_loop_with_core(std::hint::black_box(ddg), machine, &core)
                        .expect("stress loop schedules");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_loop_across_presets);
criterion_main!(benches);
