//! Criterion benchmarks of every scheduler on representative loops — the
//! compilation-time comparison behind Tables 1 and 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrms_baselines::{
    BranchAndBoundScheduler, FrlcScheduler, IterativeScheduler, SlackScheduler, TopDownScheduler,
};
use hrms_core::HrmsScheduler;
use hrms_machine::presets;
use hrms_modsched::{ModuloScheduler, SchedulerConfig};
use hrms_workloads::{motivating, reference24, synthetic};

fn bench_heuristics(c: &mut Criterion) {
    let machine = presets::govindarajan();
    let loops = vec![
        motivating::figure1(),
        reference24::inner_product(),
        reference24::equation_of_state(),
        reference24::implicit_hydro(),
    ];
    let schedulers: Vec<Box<dyn ModuloScheduler>> = vec![
        Box::new(HrmsScheduler::new()),
        Box::new(TopDownScheduler::new()),
        Box::new(SlackScheduler::new()),
        Box::new(FrlcScheduler::new()),
        Box::new(IterativeScheduler::new()),
    ];
    let mut group = c.benchmark_group("heuristic_schedulers");
    for ddg in &loops {
        for scheduler in &schedulers {
            group.bench_with_input(
                BenchmarkId::new(scheduler.name(), ddg.name()),
                ddg,
                |b, ddg| {
                    b.iter(|| {
                        scheduler
                            .schedule_loop(std::hint::black_box(ddg), &machine)
                            .expect("benchmark loops are schedulable")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_optimal_vs_hrms(c: &mut Criterion) {
    // The Table 3 claim: the optimal method is orders of magnitude slower
    // than HRMS for the same result.
    let machine = presets::govindarajan();
    let ddg = reference24::complex_multiply();
    let hrms = HrmsScheduler::new();
    let bb = BranchAndBoundScheduler {
        config: SchedulerConfig {
            budget_per_ii: 20_000,
            ..SchedulerConfig::default()
        },
    };
    let mut group = c.benchmark_group("optimal_vs_hrms");
    group.sample_size(10);
    group.bench_function("HRMS/complex_multiply", |b| {
        b.iter(|| hrms.schedule_loop(&ddg, &machine).unwrap())
    });
    group.bench_function("B&B/complex_multiply", |b| {
        b.iter(|| bb.schedule_loop(&ddg, &machine).unwrap())
    });
    group.finish();
}

fn bench_suite_throughput(c: &mut Criterion) {
    // How fast the whole synthetic suite can be scheduled (the paper quotes
    // 5.5 minutes for 1258 loops on a Sparc-10/40).
    let machine = presets::perfect_club();
    let loops = synthetic::perfect_club_like_sized(64);
    let hrms = HrmsScheduler::new();
    let mut group = c.benchmark_group("suite_throughput");
    group.sample_size(10);
    group.bench_function("HRMS/64_synthetic_loops", |b| {
        b.iter(|| {
            for ddg in &loops {
                hrms.schedule_loop(ddg, &machine).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_heuristics,
    bench_optimal_vs_hrms,
    bench_suite_throughput
);
criterion_main!(benches);
