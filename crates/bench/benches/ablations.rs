//! Criterion benchmarks of the design-choice ablations: what the
//! pre-ordering phase costs (and buys) relative to program-order scheduling,
//! and whether the initial hypernode choice matters for speed.

use criterion::{criterion_group, criterion_main, Criterion};
use hrms_core::{HrmsOptions, HrmsScheduler, OrderingMode, PreOrderOptions, StartNodePolicy};
use hrms_machine::presets;
use hrms_modsched::ModuloScheduler;
use hrms_workloads::synthetic;

fn bench_ordering_modes(c: &mut Criterion) {
    let machine = presets::perfect_club();
    let loops = synthetic::perfect_club_like_sized(32);
    let variants = [
        ("hypernode_reduction", HrmsOptions::default()),
        (
            "program_order",
            HrmsOptions {
                ordering: OrderingMode::ProgramOrder,
                ..HrmsOptions::default()
            },
        ),
        (
            "last_node_start",
            HrmsOptions {
                preorder: PreOrderOptions {
                    start_node: StartNodePolicy::LastInProgramOrder,
                },
                ..HrmsOptions::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ordering_ablation");
    group.sample_size(10);
    for (name, options) in variants {
        let scheduler = HrmsScheduler::with_options(options);
        group.bench_function(name, |b| {
            b.iter(|| {
                for ddg in &loops {
                    scheduler.schedule_loop(ddg, &machine).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering_modes);
criterion_main!(benches);
