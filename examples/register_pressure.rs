//! Register pressure on a machine with a limited register file: schedules a
//! slice of the synthetic Perfect-Club-like suite with HRMS and Top-Down,
//! adds spill code when a loop exceeds the budget, and reports the resulting
//! execution-time difference (the Figure 14 experiment in miniature).
//!
//! Run with `cargo run --release --example register_pressure [num_loops]`.

use hrms_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let loops = synthetic::perfect_club_like_sized(count);
    let machine = presets::perfect_club();

    for budget in [None, Some(64u64), Some(32u64)] {
        let mut hrms_cycles = 0u64;
        let mut td_cycles = 0u64;
        let mut hrms_spills = 0usize;
        let mut td_spills = 0usize;
        for ddg in &loops {
            for (scheduler, cycles, spills) in [
                (
                    &HrmsScheduler::new() as &dyn ModuloScheduler,
                    &mut hrms_cycles,
                    &mut hrms_spills,
                ),
                (
                    &TopDownScheduler::new() as &dyn ModuloScheduler,
                    &mut td_cycles,
                    &mut td_spills,
                ),
            ] {
                match budget {
                    None => {
                        let outcome = scheduler.schedule_loop(ddg, &machine)?;
                        *cycles += u64::from(outcome.metrics.ii) * ddg.iteration_count();
                    }
                    Some(regs) => {
                        let result = schedule_with_register_budget(
                            ddg,
                            &machine,
                            scheduler,
                            &SpillConfig::new(regs),
                        )?;
                        *cycles += u64::from(result.outcome.metrics.ii) * ddg.iteration_count();
                        if result.spilled_values > 0 {
                            *spills += 1;
                        }
                    }
                }
            }
        }
        let label = budget.map_or("unlimited".to_string(), |r| format!("{r} registers"));
        println!(
            "{label:>14}: HRMS {hrms_cycles:>12} cycles ({hrms_spills:>3} loops spilled), \
             Top-Down {td_cycles:>12} cycles ({td_spills:>3} loops spilled), \
             HRMS speedup {:.3}",
            td_cycles as f64 / hrms_cycles.max(1) as f64
        );
    }
    Ok(())
}
