//! Quickstart: build a small loop body, software-pipeline it with HRMS, and
//! inspect the schedule, kernel and register requirements.
//!
//! Run with `cargo run --example quickstart`.

use hrms_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The loop body of a dot product: q += x[i] * y[i].
    let mut b = DdgBuilder::new("dot_product");
    let load_x = b.node("load_x", OpKind::Load, 2);
    let load_y = b.node("load_y", OpKind::Load, 2);
    let mul = b.node("mul", OpKind::FpMul, 2);
    let acc = b.node("acc", OpKind::FpAdd, 1);
    b.edge(load_x, mul, DepKind::RegFlow, 0)?;
    b.edge(load_y, mul, DepKind::RegFlow, 0)?;
    b.edge(mul, acc, DepKind::RegFlow, 0)?;
    // The accumulator depends on its own value from the previous iteration.
    b.edge(acc, acc, DepKind::RegFlow, 1)?;
    let ddg = b.build()?;

    // Schedule it for the paper's Table-1 machine (1 FP adder, 1 FP
    // multiplier, 1 FP divider, 1 load/store unit).
    let machine = presets::govindarajan();
    let outcome = HrmsScheduler::new().schedule_loop(&ddg, &machine)?;

    println!("loop `{}` on machine `{}`", ddg.name(), machine.name());
    println!(
        "MII = {} (ResMII {}, RecMII {}), achieved II = {}\n",
        outcome.metrics.mii, outcome.metrics.res_mii, outcome.metrics.rec_mii, outcome.metrics.ii
    );
    println!("one-iteration schedule:\n{}", outcome.schedule.render(&ddg));
    println!(
        "steady-state kernel:\n{}",
        outcome.schedule.kernel().render(&ddg)
    );

    let lifetimes = LifetimeAnalysis::analyze(&ddg, &outcome.schedule);
    println!(
        "register requirements: MaxLive = {}, buffers = {}",
        lifetimes.max_live(),
        lifetimes.buffers()
    );

    // The independent validator agrees the schedule is correct.
    validate_schedule(&ddg, &machine, &outcome.schedule)?;
    println!("schedule validated: every dependence and resource constraint holds");
    Ok(())
}
