//! The paper's Section 2 motivating example (Figures 2, 3 and 4): the same
//! seven-operation loop scheduled top-down, bottom-up and with HRMS, showing
//! how the bidirectional placement shortens lifetimes and saves registers.
//!
//! Run with `cargo run --example motivating_example`.

use hrms_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ddg = motivating::figure1();
    let machine = presets::general_purpose();

    let schedulers: Vec<Box<dyn ModuloScheduler>> = vec![
        Box::new(TopDownScheduler::new()),
        Box::new(BottomUpScheduler::new()),
        Box::new(HrmsScheduler::new()),
    ];

    println!(
        "motivating example: {} operations, {} units, latency 2, MII = 2\n",
        ddg.num_nodes(),
        machine.total_units()
    );

    for scheduler in &schedulers {
        let outcome = scheduler.schedule_loop(&ddg, &machine)?;
        let lifetimes = LifetimeAnalysis::analyze(&ddg, &outcome.schedule);
        println!("== {} ==", scheduler.name());
        println!("{}", outcome.schedule.render(&ddg));
        println!("kernel:\n{}", outcome.schedule.kernel().render(&ddg));
        print!("live values per kernel row:");
        for row in 0..outcome.schedule.ii() {
            print!(" {}", lifetimes.live_at_row(row));
        }
        println!("\nregisters (MaxLive): {}\n", lifetimes.max_live());
    }

    println!("paper's numbers: Top-Down 8 registers, Bottom-Up 7, HRMS 6.");
    Ok(())
}
