//! Defining a custom machine model and workload generator, and comparing
//! every scheduler on it — the "bring your own target" use case for the
//! library.
//!
//! Run with `cargo run --release --example custom_machine`.

use hrms_repro::prelude::*;
use hrms_repro::workloads::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-wide embedded-style VLIW: one memory port, one multiply-capable
    // ALU, and a slow non-pipelined divider shared with square roots.
    let machine = MachineBuilder::new("embedded-vliw")
        .class(ResourceClass::pipelined("mem", 1)) // 0
        .class(ResourceClass::pipelined("alu", 1)) // 1
        .class(ResourceClass::unpipelined("div", 1)) // 2
        .map(OpKind::Load, 0, 3)
        .map(OpKind::Store, 0, 1)
        .map(OpKind::FpAdd, 1, 2)
        .map(OpKind::FpMul, 1, 3)
        .map(OpKind::IntAlu, 1, 1)
        .map(OpKind::Copy, 1, 1)
        .map(OpKind::Other, 1, 1)
        .map(OpKind::FpDiv, 2, 12)
        .map(OpKind::FpSqrt, 2, 20)
        .build()?;
    println!("{machine}");

    // A workload generator tuned for small DSP-style kernels.
    let config = GeneratorConfig {
        min_ops: 6,
        mean_ops: 10.0,
        max_ops: 24,
        recurrence_probability: 0.6,
        ..GeneratorConfig::default()
    };
    let loops = LoopGenerator::new(2024, config).generate(40);

    let schedulers: Vec<Box<dyn ModuloScheduler>> = vec![
        Box::new(HrmsScheduler::new()),
        Box::new(TopDownScheduler::new()),
        Box::new(SlackScheduler::new()),
        Box::new(IterativeScheduler::new()),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "scheduler", "Σ II", "# II=MII", "Σ MaxLive", "Σ buffers"
    );
    for scheduler in &schedulers {
        let mut total_ii = 0u64;
        let mut optimal = 0usize;
        let mut max_live = 0u64;
        let mut buffers = 0u64;
        for ddg in &loops {
            let outcome = scheduler.schedule_loop(ddg, &machine)?;
            validate_schedule(ddg, &machine, &outcome.schedule)?;
            total_ii += u64::from(outcome.metrics.ii);
            max_live += outcome.metrics.max_live;
            buffers += outcome.metrics.buffers;
            if outcome.metrics.ii_is_optimal() {
                optimal += 1;
            }
        }
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12}",
            scheduler.name(),
            total_ii,
            optimal,
            max_live,
            buffers
        );
    }

    // Rotating-register allocation of one schedule, as a downstream consumer
    // of the scheduling result.
    let ddg = &loops[0];
    let outcome = HrmsScheduler::new().schedule_loop(ddg, &machine)?;
    let allocation = allocate_rotating(ddg, &outcome.schedule);
    println!(
        "\nrotating register file for `{}`: {} registers (MaxLive {}, overhead {})",
        ddg.name(),
        allocation.registers,
        allocation.max_live,
        allocation.overhead()
    );
    Ok(())
}
