//! Schedules the 24-loop reference suite (modelled on the Livermore /
//! linear-algebra kernels of the paper's Table 1) with HRMS and the three
//! comparison schedulers, printing one row per loop.
//!
//! Run with `cargo run --release --example livermore_suite`.

use hrms_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = presets::govindarajan();
    let hrms = HrmsScheduler::new();
    let slack = SlackScheduler::new();
    let frlc = FrlcScheduler::new();
    // A reduced search budget keeps the optimal scheduler quick in an
    // example; the full Table 1 binary uses a larger one.
    let optimal = BranchAndBoundScheduler {
        config: SchedulerConfig {
            budget_per_ii: 20_000,
            ..SchedulerConfig::default()
        },
    };

    println!(
        "{:<28} {:>4} {:>4} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6}",
        "loop",
        "ops",
        "MII",
        "HRMS II",
        "buf",
        "B&B II",
        "buf",
        "Slack II",
        "buf",
        "FRLC II",
        "buf"
    );
    for ddg in reference24::all() {
        let h = hrms.schedule_loop(&ddg, &machine)?;
        let o = optimal.schedule_loop(&ddg, &machine)?;
        let s = slack.schedule_loop(&ddg, &machine)?;
        let f = frlc.schedule_loop(&ddg, &machine)?;
        println!(
            "{:<28} {:>4} {:>4} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6}",
            ddg.name(),
            ddg.num_nodes(),
            h.metrics.mii,
            h.metrics.ii,
            h.metrics.buffers,
            o.metrics.ii,
            o.metrics.buffers,
            s.metrics.ii,
            s.metrics.buffers,
            f.metrics.ii,
            f.metrics.buffers
        );
    }
    Ok(())
}
