//! Differential and property tests of the pre-ordering phase.
//!
//! These promote the `neighbour_invariant_holds` /
//! `every_ordered_node_has_a_reference_neighbour` unit checks (which used to
//! run on two hand-built paper figures only) to a property suite over the
//! 24-loop reference suite, the large-loop stress suite and 240+ seeded
//! generator loops — including multi-component and recurrence-heavy
//! configurations — and run every loop through **both** the dense
//! pre-ordering path and the preserved legacy implementation, asserting the
//! two produce byte-identical results.

use std::collections::HashSet;

use hrms_repro::ddg::recurrence::cross_check;
use hrms_repro::ddg::{Ddg, DdgBuilder, LoopAnalysis, NodeId, RecurrenceInfo};
use hrms_repro::hrms::preorder::backward_edges;
use hrms_repro::hrms::{
    pre_order_legacy_with, pre_order_with, PreOrderOptions, PreOrdering, StartNodePolicy,
};
use hrms_repro::workloads::{reference24, synthetic, GeneratorConfig, LoopGenerator};

/// Whether Johnson's enumeration of `g` completes within the default
/// budget and the recurrence cross-check reports the SCC-derived groups
/// exactly interchangeable with it — the regime where the two
/// pre-orderings must be byte-identical. Since the cycle-ratio analysis
/// ranks interleaved two-backward-edge recurrences exactly, this covers
/// the *entire* reference and generated corpus (the old gate excluded
/// multi-backward-edge loops as a documented exception).
fn is_provably_identical_regime(g: &Ddg) -> bool {
    let info = RecurrenceInfo::analyze(g);
    if info.truncated {
        return false;
    }
    let la = LoopAnalysis::analyze(g);
    cross_check(la.recurrence_groups(), &info).is_ok_and(|report| report.is_exact())
}

/// Builds a deterministic generator loop.
fn generated(seed: u64, size: usize, recurrence_probability: f64) -> Ddg {
    let config = GeneratorConfig {
        min_ops: size.max(3),
        mean_ops: size as f64,
        max_ops: size.max(3) + 6,
        recurrence_probability,
        ..GeneratorConfig::default()
    };
    LoopGenerator::new(seed, config).next_loop()
}

/// Concatenates two loops into one multi-component graph (no edges between
/// the halves).
fn merged(a: &Ddg, b: &Ddg) -> Ddg {
    let mut bld = DdgBuilder::new(format!("{}+{}", a.name(), b.name()));
    for (half, g) in [a, b].into_iter().enumerate() {
        let ids: Vec<NodeId> = g
            .nodes()
            .map(|(_, n)| bld.node(format!("h{half}_{}", n.name()), n.kind(), n.latency()))
            .collect();
        for (_, e) in g.edges() {
            bld.edge(
                ids[e.source().index()],
                ids[e.target().index()],
                e.kind(),
                e.distance(),
            )
            .expect("merged ids are in range");
        }
    }
    bld.build().expect("merging two valid loops is valid")
}

/// Runs both pre-ordering paths on `g` and checks every promoted property.
///
/// Byte-equality between the dense path (cycle-ratio-ranked recurrence
/// groups) and the legacy path (Johnson's circuit enumeration) is asserted
/// in the regime where the recurrence cross-check proves the two analyses
/// interchangeable: the enumeration completed and reported zero
/// coarsening. With the exact interleaved-pair ranking that is every
/// reference and generated corpus loop — including the multi-backward-edge
/// ones the old single-edge gate had to carve out; only circuits threading
/// three or more backward edges (absent from these corpora, counted by the
/// differential suite) fall back to invariants-only checking.
fn check(g: &Ddg, options: &PreOrderOptions) -> PreOrdering {
    check_counting_comparisons(g, options).0
}

/// [`check`], also reporting whether the byte-equality comparison applied
/// (so suites can assert how much of their corpus it covered without
/// re-running the circuit enumeration).
fn check_counting_comparisons(g: &Ddg, options: &PreOrderOptions) -> (PreOrdering, bool) {
    let dense = pre_order_with(&LoopAnalysis::analyze(g), options);
    let compared = is_provably_identical_regime(g);
    if compared {
        let legacy = pre_order_legacy_with(g, options);
        assert_eq!(
            dense,
            legacy,
            "dense and legacy pre-orderings diverge on `{}`",
            g.name()
        );
    }
    check_invariants(g, &dense);
    (dense, compared)
}

/// The promoted ordering invariants alone — no legacy comparison and no
/// circuit enumeration, so they also run on the recurrence-heavy loops
/// whose enumeration would truncate.
fn check_invariants(g: &Ddg, dense: &PreOrdering) {
    // The ordering is a permutation of the nodes.
    let mut sorted = dense.order.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        g.num_nodes(),
        "`{}`: not a permutation",
        g.name()
    );

    // Adjacency of the acyclic graph (backward edges dropped) and of the
    // full graph, precomputed so the property checks stay O(V + E).
    let dropped = backward_edges(g);
    let n = g.num_nodes();
    let mut acyclic_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut acyclic_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut full_neigh: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (eid, e) in g.edges() {
        if e.is_self_loop() {
            continue;
        }
        let (s, t) = (e.source().index(), e.target().index());
        full_neigh[s].push(t);
        full_neigh[t].push(s);
        if !dropped.contains(&eid) {
            acyclic_succs[s].push(t);
            acyclic_preds[t].push(s);
        }
    }

    // Promoted `neighbour_invariant_holds`: on the acyclic graph, no node is
    // ordered while both a predecessor and a successor are already placed —
    // this holds unconditionally (recurrence-closing nodes only have "both
    // sides" through their dropped backward edge).
    let mut placed = vec![false; n];
    for &node in &dense.order {
        let i = node.index();
        let preds_in = acyclic_preds[i].iter().any(|&p| placed[p]);
        let succs_in = acyclic_succs[i].iter().any(|&s| placed[s]);
        assert!(
            !(preds_in && succs_in),
            "`{}`: node {node} ordered between already-placed neighbours",
            g.name()
        );
        placed[i] = true;
    }

    // Promoted `every_ordered_node_has_a_reference_neighbour`: nodes without
    // an already-ordered neighbour in the *full* graph are limited to the
    // first node of each weakly connected component, plus (for
    // recurrence-bearing loops) the entry node of a recurrence subgraph that
    // is unreachable from the hypernode. Recurrence-free loops get the exact
    // bound.
    let mut placed = vec![false; n];
    let mut without_reference = 0usize;
    for &node in &dense.order {
        let i = node.index();
        if !full_neigh[i].iter().any(|&m| placed[m]) {
            without_reference += 1;
        }
        placed[i] = true;
    }
    if dense.recurrence_subgraphs == 0 {
        assert_eq!(
            without_reference,
            dense.components,
            "`{}`: exactly one reference-free node (the initial hypernode) per component",
            g.name()
        );
    } else {
        assert!(
            without_reference <= dense.components + dense.recurrence_subgraphs,
            "`{}`: {} nodes without a reference (components {}, recurrence subgraphs {})",
            g.name(),
            without_reference,
            dense.components,
            dense.recurrence_subgraphs
        );
    }
}

#[test]
fn reference24_is_identical_on_both_paths() {
    for g in reference24::all() {
        check(&g, &PreOrderOptions::default());
    }
}

#[test]
fn recurrence_heavy_suite_holds_the_invariants() {
    // The dense-SCC regime where Johnson's enumeration blows its budget:
    // only the dense path (SCC-derived recurrence groups) runs here, and
    // every promoted ordering invariant must hold on it.
    for g in synthetic::recurrence_heavy_suite() {
        let p = pre_order_with(&LoopAnalysis::analyze(&g), &PreOrderOptions::default());
        assert!(!p.truncated, "the enumeration-free path never truncates");
        assert!(p.recurrence_subgraphs > 0, "`{}`", g.name());
        check_invariants(&g, &p);
    }
}

#[test]
fn stress_suite_is_identical_on_both_paths() {
    for g in synthetic::stress_suite() {
        check(&g, &PreOrderOptions::default());
    }
}

#[test]
fn two_hundred_generated_loops_hold_the_invariants_on_both_paths() {
    let mut checked = 0usize;
    let mut compared = 0usize;
    for seed in 0..100u64 {
        let size = 4 + (seed as usize * 7) % 44;
        // Recurrence-heavy and recurrence-free variants of every seed.
        for rec_prob in [0.0, 0.8] {
            let g = generated(seed, size, rec_prob);
            let (_, was_compared) = check_counting_comparisons(&g, &PreOrderOptions::default());
            checked += 1;
            compared += usize::from(was_compared);
        }
    }
    assert!(checked >= 200, "the suite must cover at least 200 loops");
    // With the exact interleaved-pair ranking there is no coarsening
    // carve-out left: every loop of the corpus — including the
    // multi-backward-edge one that used to be the documented exception —
    // must compare dense vs legacy byte-identically.
    assert_eq!(
        compared, checked,
        "every corpus loop must compare dense vs legacy byte-identically"
    );
}

#[test]
fn interleaved_recurrence_suite_is_identical_on_both_paths() {
    // Loops built to contain circuits that thread *two* backward edges:
    // exactly the regime the old analysis coarsened into per-SCC residual
    // groups. The cycle-ratio ranking must make the dense path
    // byte-identical to Johnson's ordering on every one of them.
    for g in synthetic::interleaved_recurrence_suite() {
        let (p, compared) = check_counting_comparisons(&g, &PreOrderOptions::default());
        assert!(
            compared,
            "`{}`: the interleaved loop must be in the provably-identical regime",
            g.name()
        );
        assert!(p.recurrence_subgraphs > 0, "`{}`", g.name());
    }
}

#[test]
fn multi_component_loops_hold_the_invariants_on_both_paths() {
    for seed in 0..20u64 {
        let a = generated(seed, 6 + (seed as usize % 20), 0.7);
        let b = generated(seed + 1000, 4 + (seed as usize % 14), 0.0);
        let g = merged(&a, &b);
        let p = check(&g, &PreOrderOptions::default());
        assert!(
            p.components >= 2,
            "merging two loops must give at least two components"
        );
    }
}

#[test]
fn start_node_policies_agree_between_paths() {
    for seed in [3u64, 17, 99] {
        let g = generated(seed, 20, 0.5);
        for policy in [
            StartNodePolicy::FirstInProgramOrder,
            StartNodePolicy::LastInProgramOrder,
            StartNodePolicy::Fixed(NodeId(2)),
        ] {
            check(&g, &PreOrderOptions { start_node: policy });
        }
    }
}

#[test]
fn ordering_is_stable_across_repeated_runs() {
    // Guards the determinism contract end to end (components, recurrence
    // analysis, tie-breaks): two independent runs must agree exactly.
    let fingerprint = |orders: &[PreOrdering]| -> Vec<Vec<NodeId>> {
        orders.iter().map(|p| p.order.clone()).collect()
    };
    let run = || -> Vec<PreOrdering> {
        reference24::all()
            .iter()
            .map(|g| pre_order_with(&LoopAnalysis::analyze(g), &PreOrderOptions::default()))
            .collect()
    };
    let deduped: HashSet<Vec<Vec<NodeId>>> = [fingerprint(&run()), fingerprint(&run())]
        .into_iter()
        .collect();
    assert_eq!(deduped.len(), 1, "repeated runs must be byte-identical");
}
