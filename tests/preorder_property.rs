//! Property and golden-pin tests of the pre-ordering phase.
//!
//! These promote the `neighbour_invariant_holds` /
//! `every_ordered_node_has_a_reference_neighbour` unit checks (which used to
//! run on two hand-built paper figures only) to a property suite over the
//! 24-loop reference suite, the large-loop stress suite and 240+ seeded
//! generator loops — including multi-component and recurrence-heavy
//! configurations.
//!
//! **Legacy retirement, step 1.** Earlier revisions of this suite ran every
//! loop through both the dense pre-ordering path and the preserved legacy
//! implementation (Johnson's circuit enumeration) and asserted the two
//! byte-identical. That equivalence was proven across the whole corpus —
//! including the interleaved multi-backward-edge loops that used to be the
//! documented exception — so the runtime comparison is now retired in
//! favour of golden fingerprint pins: every corpus ordering is hashed into
//! `tests/golden/preorder_fingerprints.txt`, freezing the
//! legacy-equivalent output without executing the legacy path. Any
//! behavioural drift in the dense path fails the pin; the legacy module
//! itself remains available to the differential suite and the
//! `verify-dense` feature until retirement completes.
//!
//! Regenerate the golden file after an *intentional* ordering change with:
//! `HRMS_BLESS=1 cargo test --test preorder_property`.

use std::collections::HashSet;
use std::fmt::Write as _;

use hrms_repro::ddg::{Ddg, DdgBuilder, LoopAnalysis, NodeId};
use hrms_repro::hrms::preorder::backward_edges;
use hrms_repro::hrms::{pre_order_with, PreOrderOptions, PreOrdering, StartNodePolicy};
use hrms_repro::workloads::{reference24, synthetic, GeneratorConfig, LoopGenerator};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/preorder_fingerprints.txt"
);

/// FNV-1a over the ordering and its structural counters: the pinned
/// fingerprint of one pre-ordering.
fn fingerprint(p: &PreOrdering) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(p.order.len() as u64);
    for &n in &p.order {
        eat(n.index() as u64);
    }
    eat(p.components as u64);
    eat(p.recurrence_subgraphs as u64);
    eat(u64::from(p.truncated));
    h
}

/// Builds a deterministic generator loop.
fn generated(seed: u64, size: usize, recurrence_probability: f64) -> Ddg {
    let config = GeneratorConfig {
        min_ops: size.max(3),
        mean_ops: size as f64,
        max_ops: size.max(3) + 6,
        recurrence_probability,
        ..GeneratorConfig::default()
    };
    LoopGenerator::new(seed, config).next_loop()
}

/// Concatenates two loops into one multi-component graph (no edges between
/// the halves).
fn merged(a: &Ddg, b: &Ddg) -> Ddg {
    let mut bld = DdgBuilder::new(format!("{}+{}", a.name(), b.name()));
    for (half, g) in [a, b].into_iter().enumerate() {
        let ids: Vec<NodeId> = g
            .nodes()
            .map(|(_, n)| bld.node(format!("h{half}_{}", n.name()), n.kind(), n.latency()))
            .collect();
        for (_, e) in g.edges() {
            bld.edge(
                ids[e.source().index()],
                ids[e.target().index()],
                e.kind(),
                e.distance(),
            )
            .expect("merged ids are in range");
        }
    }
    bld.build().expect("merging two valid loops is valid")
}

/// Runs the dense pre-ordering on `g` and checks every promoted property.
fn check(g: &Ddg, options: &PreOrderOptions) -> PreOrdering {
    let dense = pre_order_with(&LoopAnalysis::analyze(g), options);
    check_invariants(g, &dense);
    dense
}

/// The promoted ordering invariants — structural, so they run on every
/// corpus including the recurrence-heavy loops whose circuit enumeration
/// used to truncate.
fn check_invariants(g: &Ddg, dense: &PreOrdering) {
    // The ordering is a permutation of the nodes.
    let mut sorted = dense.order.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        g.num_nodes(),
        "`{}`: not a permutation",
        g.name()
    );

    // Adjacency of the acyclic graph (backward edges dropped) and of the
    // full graph, precomputed so the property checks stay O(V + E).
    let dropped = backward_edges(g);
    let n = g.num_nodes();
    let mut acyclic_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut acyclic_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut full_neigh: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (eid, e) in g.edges() {
        if e.is_self_loop() {
            continue;
        }
        let (s, t) = (e.source().index(), e.target().index());
        full_neigh[s].push(t);
        full_neigh[t].push(s);
        if !dropped.contains(&eid) {
            acyclic_succs[s].push(t);
            acyclic_preds[t].push(s);
        }
    }

    // Promoted `neighbour_invariant_holds`: on the acyclic graph, no node is
    // ordered while both a predecessor and a successor are already placed —
    // this holds unconditionally (recurrence-closing nodes only have "both
    // sides" through their dropped backward edge).
    let mut placed = vec![false; n];
    for &node in &dense.order {
        let i = node.index();
        let preds_in = acyclic_preds[i].iter().any(|&p| placed[p]);
        let succs_in = acyclic_succs[i].iter().any(|&s| placed[s]);
        assert!(
            !(preds_in && succs_in),
            "`{}`: node {node} ordered between already-placed neighbours",
            g.name()
        );
        placed[i] = true;
    }

    // Promoted `every_ordered_node_has_a_reference_neighbour`: nodes without
    // an already-ordered neighbour in the *full* graph are limited to the
    // first node of each weakly connected component, plus (for
    // recurrence-bearing loops) the entry node of a recurrence subgraph that
    // is unreachable from the hypernode. Recurrence-free loops get the exact
    // bound.
    let mut placed = vec![false; n];
    let mut without_reference = 0usize;
    for &node in &dense.order {
        let i = node.index();
        if !full_neigh[i].iter().any(|&m| placed[m]) {
            without_reference += 1;
        }
        placed[i] = true;
    }
    if dense.recurrence_subgraphs == 0 {
        assert_eq!(
            without_reference,
            dense.components,
            "`{}`: exactly one reference-free node (the initial hypernode) per component",
            g.name()
        );
    } else {
        assert!(
            without_reference <= dense.components + dense.recurrence_subgraphs,
            "`{}`: {} nodes without a reference (components {}, recurrence subgraphs {})",
            g.name(),
            without_reference,
            dense.components,
            dense.recurrence_subgraphs
        );
    }
}

/// The pinned corpus: every `(key, ordering)` pair, in a stable order. The
/// keys embed the generator parameters so same-named loops from different
/// seeds stay distinct.
fn pinned_corpus() -> Vec<(String, PreOrdering)> {
    let mut entries: Vec<(String, PreOrdering)> = Vec::new();
    let defaults = PreOrderOptions::default();

    for g in reference24::all() {
        entries.push((format!("reference24/{}", g.name()), check(&g, &defaults)));
    }
    for g in synthetic::stress_suite() {
        entries.push((format!("stress/{}", g.name()), check(&g, &defaults)));
    }
    for g in synthetic::interleaved_recurrence_suite() {
        entries.push((format!("interleaved/{}", g.name()), check(&g, &defaults)));
    }
    for seed in 0..100u64 {
        let size = 4 + (seed as usize * 7) % 44;
        for rec_prob in [0.0, 0.8] {
            let g = generated(seed, size, rec_prob);
            entries.push((format!("gen/s{seed}/p{rec_prob}"), check(&g, &defaults)));
        }
    }
    for seed in 0..20u64 {
        let a = generated(seed, 6 + (seed as usize % 20), 0.7);
        let b = generated(seed + 1000, 4 + (seed as usize % 14), 0.0);
        let g = merged(&a, &b);
        let p = check(&g, &defaults);
        assert!(
            p.components >= 2,
            "merging two loops must give at least two components"
        );
        entries.push((format!("merged/s{seed}"), p));
    }
    for seed in [3u64, 17, 99] {
        let g = generated(seed, 20, 0.5);
        for (tag, policy) in [
            ("first", StartNodePolicy::FirstInProgramOrder),
            ("last", StartNodePolicy::LastInProgramOrder),
            ("fixed2", StartNodePolicy::Fixed(NodeId(2))),
        ] {
            let p = check(&g, &PreOrderOptions { start_node: policy });
            entries.push((format!("policy/s{seed}/{tag}"), p));
        }
    }
    entries
}

/// Renders the corpus as the golden file body: one `key fingerprint` line
/// per entry.
fn render(entries: &[(String, PreOrdering)]) -> String {
    let mut out = String::new();
    for (key, p) in entries {
        let _ = writeln!(out, "{key} {:016x}", fingerprint(p));
    }
    out
}

#[test]
fn dense_orderings_match_the_golden_fingerprints() {
    let actual = render(&pinned_corpus());
    if std::env::var_os("HRMS_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e}; regenerate with HRMS_BLESS=1"));
    assert_eq!(
        actual, golden,
        "pre-orderings drifted from tests/golden/preorder_fingerprints.txt \
         (the frozen legacy-equivalent output); if the change is intentional, \
         regenerate with `HRMS_BLESS=1 cargo test --test preorder_property`"
    );
}

#[test]
fn recurrence_heavy_suite_holds_the_invariants() {
    // The dense-SCC regime where Johnson's enumeration used to blow its
    // budget: every promoted ordering invariant must hold. (Not pinned:
    // the 500–2000-op orderings would dominate golden churn without adding
    // coverage beyond the invariants.)
    for g in synthetic::recurrence_heavy_suite() {
        let p = pre_order_with(&LoopAnalysis::analyze(&g), &PreOrderOptions::default());
        assert!(!p.truncated, "the enumeration-free path never truncates");
        assert!(p.recurrence_subgraphs > 0, "`{}`", g.name());
        check_invariants(&g, &p);
    }
}

#[test]
fn ordering_is_stable_across_repeated_runs() {
    // Guards the determinism contract end to end (components, recurrence
    // analysis, tie-breaks): two independent runs must agree exactly.
    let fingerprints =
        |orders: &[PreOrdering]| -> Vec<u64> { orders.iter().map(fingerprint).collect() };
    let run = || -> Vec<PreOrdering> {
        reference24::all()
            .iter()
            .map(|g| pre_order_with(&LoopAnalysis::analyze(g), &PreOrderOptions::default()))
            .collect()
    };
    let deduped: HashSet<Vec<u64>> = [fingerprints(&run()), fingerprints(&run())]
        .into_iter()
        .collect();
    assert_eq!(deduped.len(), 1, "repeated runs must be byte-identical");
}
