//! Protocol-level tests of the batch scheduling service, driven entirely
//! in-process through [`Service::process`] — the same code path the `hrms
//! serve` binary streams, byte for byte.
//!
//! Covered here: the happy path, input-order streaming under the worker
//! pool, malformed-request diagnostics, per-cell failure containment
//! (scheduling errors and contained panics), cache behaviour visible at
//! the protocol level, and shutdown/drain semantics including the Unix
//! socket transport. The cache *contract* at scale has its own suite in
//! `tests/serve_soak.rs`.

use hrms_repro::serve::json::{self, Value};
use hrms_repro::serve::{ServeConfig, Service};

/// A tiny distinct `.loop` source: the name alone changes the fingerprint.
fn loop_text(name: &str) -> String {
    format!("loop {name}\nnode a load latency=2\nnode b fadd latency=1\nedge a -> b flow\nend\n")
}

/// Renders a `.loop` entry as a JSON string literal for a request line.
fn quoted(text: &str) -> String {
    let mut out = String::new();
    hrms_repro::modsched::push_json_str(&mut out, text);
    out
}

fn schedule_request(id: &str, loops: &[String]) -> String {
    let entries: Vec<String> = loops.iter().map(|l| quoted(l)).collect();
    format!(
        "{{\"req\":\"schedule\",\"id\":{id},\"loops\":[{}]}}\n",
        entries.join(",")
    )
}

/// Parses a response line and returns the object's fields by key.
fn fields(line: &str) -> Value {
    json::parse(line).unwrap_or_else(|e| panic!("response is not JSON ({e}): {line}"))
}

fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}` in {v:?}"))
}

fn num_field(v: &Value, key: &str) -> i64 {
    match v.get(key) {
        Some(Value::Num(raw)) => raw.parse().unwrap_or_else(|_| panic!("`{key}`={raw}")),
        other => panic!("missing number `{key}`: {other:?}"),
    }
}

#[test]
fn happy_path_streams_one_result_per_loop_plus_done() {
    let mut service = Service::default();
    let input = schedule_request("1", &[loop_text("alpha"), loop_text("beta")]);
    let (out, shutdown) = service.process(&input);
    assert!(!shutdown);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "2 results + done:\n{out}");
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        let v = fields(lines[i]);
        assert_eq!(str_field(&v, "type"), "result");
        assert_eq!(num_field(&v, "id"), 1);
        assert_eq!(num_field(&v, "index"), i as i64);
        assert_eq!(str_field(&v, "loop"), *name);
        assert_eq!(str_field(&v, "scheduler"), "HRMS");
        assert_eq!(str_field(&v, "machine"), "govindarajan-4fu");
        assert!(num_field(&v, "ii") >= 1);
    }
    let done = fields(lines[2]);
    assert_eq!(str_field(&done, "type"), "done");
    assert_eq!(num_field(&done, "results"), 2);
    assert_eq!(num_field(&done, "errors"), 0);
}

#[test]
fn results_come_back_in_input_order_under_the_pool() {
    // Many distinct loops across a small pool: whatever order the workers
    // finish in, the stream must be index 0, 1, 2, ... with each index
    // naming the loop that sat at that position in the request.
    let mut service = Service::new(&ServeConfig {
        workers: Some(4),
        ..ServeConfig::default()
    });
    let names: Vec<String> = (0..40).map(|i| format!("l{i:02}")).collect();
    let loops: Vec<String> = names.iter().map(|n| loop_text(n)).collect();
    let (out, _) = service.process(&schedule_request("7", &loops));
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), names.len() + 1);
    for (i, name) in names.iter().enumerate() {
        let v = fields(lines[i]);
        assert_eq!(num_field(&v, "index"), i as i64);
        assert_eq!(str_field(&v, "loop"), name, "line {i} out of order");
    }
}

#[test]
fn malformed_requests_answer_with_diagnostics_and_the_connection_survives() {
    let mut service = Service::default();
    let good = loop_text("ok");
    let input = [
        "{not json\n".to_string(),
        "{\"req\":\"frobnicate\",\"id\":\"f\"}\n".to_string(),
        format!(
            "{{\"req\":\"schedule\",\"id\":3,\"loops\":[{}]}}\n",
            quoted("loop broken\nnode a\nend\n")
        ),
        format!(
            "{{\"req\":\"schedule\",\"id\":4,\"scheduler\":\"nope\",\"loops\":[{}]}}\n",
            quoted(&good)
        ),
        schedule_request("5", std::slice::from_ref(&good)),
    ]
    .concat();
    let (out, shutdown) = service.process(&input);
    assert!(!shutdown);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 6, "4 errors, then a result + done:\n{out}");

    let bad_json = fields(lines[0]);
    assert_eq!(str_field(&bad_json, "type"), "error");
    assert_eq!(str_field(&bad_json, "stage"), "request");
    assert_eq!(bad_json.get("id"), Some(&Value::Null));
    assert!(str_field(&bad_json, "error").contains("not valid JSON"));

    let bad_verb = fields(lines[1]);
    assert_eq!(
        str_field(&bad_verb, "id"),
        "f",
        "id echoed when recoverable"
    );
    assert!(str_field(&bad_verb, "error").contains("unknown request"));

    // An unparsable loop entry is rejected with the lint pass's span
    // diagnostics, addressed to the entry's position in the request.
    let bad_loop = fields(lines[2]);
    assert_eq!(str_field(&bad_loop, "stage"), "request");
    assert!(
        str_field(&bad_loop, "error").contains("loops[0] does not parse"),
        "{}",
        lines[2]
    );
    let diags = bad_loop
        .get("diagnostics")
        .and_then(Value::as_array)
        .expect("diagnostics array");
    assert!(!diags.is_empty());
    assert_eq!(str_field(&diags[0], "file"), "loops[0]");
    assert!(str_field(&diags[0], "code").starts_with('L'));

    let bad_sched = fields(lines[3]);
    assert!(str_field(&bad_sched, "error").contains("unknown scheduler `nope`"));

    // And the same connection still schedules fine afterwards.
    assert_eq!(str_field(&fields(lines[4]), "type"), "result");
    assert_eq!(str_field(&fields(lines[5]), "type"), "done");
}

#[test]
fn machines_resolve_as_presets_or_inline_text_but_never_files() {
    let mut service = Service::default();
    let inline = hrms_repro::machine::write_machine(&hrms_repro::machine::presets::perfect_club());
    let good = loop_text("m");
    let input = [
        format!(
            "{{\"req\":\"schedule\",\"id\":1,\"machine\":{},\"loops\":[{}]}}\n",
            quoted(&inline),
            quoted(&good)
        ),
        format!(
            "{{\"req\":\"schedule\",\"id\":2,\"machine\":{},\"loops\":[{}]}}\n",
            quoted("machine m\n  zzz\nend\n"),
            quoted(&good)
        ),
        format!(
            "{{\"req\":\"schedule\",\"id\":3,\"machine\":\"/etc/passwd\",\"loops\":[{}]}}\n",
            quoted(&good)
        ),
    ]
    .concat();
    let (out, _) = service.process(&input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "{out}");

    let v = fields(lines[0]);
    assert_eq!(str_field(&v, "type"), "result");
    assert_eq!(str_field(&v, "machine"), "perfect-club-8fu");

    // Broken inline text gets the machine lint's span diagnostics.
    let bad = fields(lines[2]);
    assert_eq!(str_field(&bad, "stage"), "request");
    assert!(str_field(&bad, "error").contains("inline machine does not parse"));
    let diags = bad.get("diagnostics").and_then(Value::as_array).unwrap();
    assert!(diags.iter().any(|d| str_field(d, "code").starts_with('M')));

    // A path is just a bad preset name: the service never reads files for
    // a client.
    let path = fields(lines[3]);
    assert!(
        str_field(&path, "error").contains("not a machine preset"),
        "{}",
        lines[3]
    );
}

#[test]
fn failing_cells_become_error_records_and_spare_the_batch() {
    let mut service = Service::default();
    // Index 1 carries a zero-distance dependence cycle: it parses, but no
    // scheduler can honour it, so the cell fails while its neighbours
    // schedule normally.
    let impossible = "loop impossible\nnode a fadd latency=1\nnode b fadd latency=1\n\
                      edge a -> b flow\nedge b -> a flow\nend\n"
        .to_string();
    let input = schedule_request("1", &[loop_text("before"), impossible, loop_text("after")]);
    let (out, _) = service.process(&input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4);
    assert_eq!(str_field(&fields(lines[0]), "type"), "result");
    let err = fields(lines[1]);
    assert_eq!(str_field(&err, "type"), "error");
    assert_eq!(str_field(&err, "stage"), "schedule");
    assert_eq!(num_field(&err, "index"), 1);
    assert_eq!(str_field(&err, "loop"), "impossible");
    assert!(!str_field(&err, "error").is_empty());
    assert_eq!(str_field(&fields(lines[2]), "type"), "result");
    let done = fields(lines[3]);
    assert_eq!(num_field(&done, "results"), 2);
    assert_eq!(num_field(&done, "errors"), 1);
}

#[test]
fn panicking_cells_are_contained_with_the_payload_and_location() {
    let mut service = Service::default();
    let input = format!(
        "{{\"req\":\"schedule\",\"id\":\"boom\",\"scheduler\":\"chaos\",\"loops\":[{},{}]}}\n",
        quoted(&loop_text("v1")),
        quoted(&loop_text("v2"))
    );
    let (out, _) = service.process(&input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "2 cell errors + done:\n{out}");
    for (i, line) in lines[..2].iter().enumerate() {
        let v = fields(line);
        assert_eq!(str_field(&v, "type"), "error");
        assert_eq!(str_field(&v, "stage"), "schedule");
        assert_eq!(num_field(&v, "index"), i as i64);
        let msg = str_field(&v, "error");
        assert!(msg.contains("chaos scheduler always panics"), "{msg}");
        assert!(msg.contains("registry.rs:"), "panic location kept: {msg}");
    }
    let done = fields(lines[2]);
    assert_eq!(num_field(&done, "results"), 0);
    assert_eq!(num_field(&done, "errors"), 2);
    // Errors are not cached: nothing poisoned, nothing stored.
    assert_eq!(service.cache_stats().entries, 0);
}

#[test]
fn duplicates_are_cache_hits_and_replay_the_same_bytes() {
    let mut service = Service::default();
    let l = loop_text("dup");
    let batch = schedule_request("1", &[l.clone(), l.clone(), l.clone()]);
    let (first, _) = service.process(&batch);
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "one distinct loop scheduled once");
    assert_eq!(stats.hits, 2, "batch-local duplicates are hits");

    // A later identical batch is served from cache with identical bytes.
    let (again, _) = service.process(&schedule_request("1", &[l.clone(), l.clone(), l]));
    assert_eq!(first, again, "cached replay is byte-identical");
    assert_eq!(service.cache_stats().hits, 5);
    assert_eq!(service.cache_stats().misses, 1);
}

#[test]
fn cache_false_schedules_cold_and_touches_no_counters() {
    let mut service = Service::default();
    let l = loop_text("cold");
    let input = format!(
        "{{\"req\":\"schedule\",\"id\":1,\"cache\":false,\"loops\":[{},{}]}}\n",
        quoted(&l),
        quoted(&l)
    );
    let (out, _) = service.process(&input);
    assert_eq!(out.lines().count(), 3);
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
}

#[test]
fn timing_requests_bypass_the_cache_and_carry_timing_fields() {
    let mut service = Service::default();
    let l = loop_text("timed");
    // Warm the cache first; the timing request must not be served from it
    // (a replayed wall-clock would be a lie).
    service.process(&schedule_request("1", std::slice::from_ref(&l)));
    let input = format!(
        "{{\"req\":\"schedule\",\"id\":2,\"timing\":true,\"loops\":[{}]}}\n",
        quoted(&l)
    );
    let (out, _) = service.process(&input);
    let first = out.lines().next().unwrap();
    assert!(first.contains("\"elapsed_us\":"), "{first}");
    let stats = service.cache_stats();
    assert_eq!(stats.hits, 0, "timing runs never read the cache");
    assert_eq!(stats.misses, 1, "only the warming request moved counters");
}

#[test]
fn the_cache_is_bounded_and_reports_evictions() {
    let mut service = Service::new(&ServeConfig {
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    let loops: Vec<String> = (0..3).map(|i| loop_text(&format!("e{i}"))).collect();
    service.process(&schedule_request("1", &loops));
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.capacity, 2);
}

#[test]
fn stats_requests_expose_the_service_counters() {
    let mut service = Service::default();
    let input = [
        schedule_request("1", &[loop_text("s1"), loop_text("s1")]),
        "{\"req\":\"stats\",\"id\":\"after\"}\n".to_string(),
    ]
    .concat();
    let (out, _) = service.process(&input);
    let stats = fields(out.lines().last().unwrap());
    assert_eq!(str_field(&stats, "type"), "stats");
    assert_eq!(str_field(&stats, "id"), "after");
    assert_eq!(num_field(&stats, "hits"), 1);
    assert_eq!(num_field(&stats, "misses"), 1);
    assert_eq!(num_field(&stats, "requests"), 1);
    assert_eq!(num_field(&stats, "results"), 2);
    assert_eq!(num_field(&stats, "errors"), 0);
}

#[test]
fn feedback_chaos_degrades_to_cell_errors_and_the_connection_survives() {
    // `"feedback": true` around the hidden always-panicking scheduler: the
    // panic unwinds through the iterative rescheduler and is contained at
    // the engine's cell boundary as a structured error record — and the
    // very same connection keeps answering requests afterwards.
    let mut service = Service::default();
    let input = format!(
        "{{\"req\":\"schedule\",\"id\":\"fb-boom\",\"scheduler\":\"chaos\",\
         \"feedback\":true,\"loops\":[{}]}}\n\
         {{\"req\":\"stats\",\"id\":\"after\"}}\n",
        quoted(&loop_text("v1"))
    );
    let (out, shutdown) = service.process(&input);
    assert!(!shutdown);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "1 cell error + done + stats:\n{out}");
    let cell = fields(lines[0]);
    assert_eq!(str_field(&cell, "type"), "error");
    assert_eq!(str_field(&cell, "stage"), "schedule");
    let msg = str_field(&cell, "error");
    assert!(msg.contains("Chaos+feedback[r32,i6,s16]"), "{msg}");
    assert!(msg.contains("chaos scheduler always panics"), "{msg}");
    let done = fields(lines[1]);
    assert_eq!(num_field(&done, "errors"), 1);
    let stats = fields(lines[2]);
    assert_eq!(str_field(&stats, "type"), "stats");
    assert_eq!(num_field(&stats, "errors"), 1);
    // Errors are never cached, feedback or not.
    assert_eq!(service.cache_stats().entries, 0);
}

#[test]
fn feedback_traces_replay_byte_stable_across_cache_miss_and_hit() {
    let mut service = Service::default();
    let l = loop_text("fb");
    // Warm the cache with the one-shot result first: the feedback request
    // must NOT be served from it — the wrapped scheduler's name (and hence
    // the content-addressed key) embeds the feedback configuration.
    service.process(&schedule_request("1", std::slice::from_ref(&l)));
    let fb = format!(
        "{{\"req\":\"schedule\",\"id\":2,\
         \"feedback\":{{\"registers\":8,\"iterations\":4}},\"loops\":[{}]}}\n",
        quoted(&l)
    );
    let (first, _) = service.process(&fb);
    let stats = service.cache_stats();
    assert_eq!(
        stats.misses, 2,
        "the feedback config is part of the cache key"
    );
    let v = fields(first.lines().next().unwrap());
    assert_eq!(str_field(&v, "type"), "result");
    assert_eq!(str_field(&v, "scheduler"), "HRMS+feedback[r8,i4,s16]");
    assert!(
        first.contains("\"feedback\":{\"selected\":"),
        "trace embedded in the report: {first}"
    );
    assert!(first.contains("\"perturbation\":\"baseline\""), "{first}");

    // Replay: the cache hit streams byte-identical records, trace included.
    let (again, _) = service.process(&fb);
    assert_eq!(first, again, "cached feedback replay is byte-identical");
    assert_eq!(service.cache_stats().hits, 1);
    assert_eq!(service.cache_stats().misses, 2);
}

#[test]
fn multi_machine_requests_stream_loop_major_cells() {
    let mut service = Service::default();
    let entries: Vec<String> = [loop_text("alpha"), loop_text("beta")]
        .iter()
        .map(|l| quoted(l))
        .collect();
    let input = format!(
        "{{\"req\":\"schedule\",\"id\":1,\"machines\":[\"govindarajan\",\"perfect-club\",\
         \"general-purpose\"],\"loops\":[{}]}}\n",
        entries.join(",")
    );
    let (out, _) = service.process(&input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 7, "2 loops x 3 machines + done:\n{out}");
    let expected_machines = ["govindarajan-4fu", "perfect-club-8fu", "general-4xL2"];
    for (i, line) in lines[..6].iter().enumerate() {
        let v = fields(line);
        assert_eq!(str_field(&v, "type"), "result");
        assert_eq!(num_field(&v, "index"), i as i64);
        assert_eq!(str_field(&v, "loop"), ["alpha", "beta"][i / 3]);
        assert_eq!(str_field(&v, "machine"), expected_machines[i % 3]);
    }
    let done = fields(lines[6]);
    assert_eq!(num_field(&done, "results"), 6);
    assert_eq!(num_field(&done, "errors"), 0);
}

#[test]
fn multi_machine_requests_pay_one_analysis_per_loop_and_show_in_stats() {
    // A single inline worker keeps the scheduling on this thread, so the
    // thread-local instrumentation counters see every analysis run.
    let mut service = Service::new(&ServeConfig {
        workers: Some(1),
        ..ServeConfig::default()
    });
    let entries: Vec<String> = [loop_text("alpha"), loop_text("beta")]
        .iter()
        .map(|l| quoted(l))
        .collect();
    let input = format!(
        "{{\"req\":\"schedule\",\"id\":1,\"machines\":[\"govindarajan\",\"perfect-club\",\
         \"general-purpose\"],\"loops\":[{}]}}\n{{\"req\":\"stats\",\"id\":2}}\n",
        entries.join(",")
    );
    hrms_repro::ddg::instrument::reset();
    let (out, _) = service.process(&input);
    // The differential verify features run extra analyses that move the
    // counters, so the exact pin only holds in the default build.
    if cfg!(not(any(
        feature = "verify-dense",
        feature = "verify-recurrence"
    ))) {
        assert_eq!(
            hrms_repro::ddg::instrument::tarjan_runs(),
            2,
            "one SCC analysis per loop, shared across the three machines"
        );
    }
    let stats = fields(out.lines().last().unwrap());
    assert_eq!(num_field(&stats, "misses"), 6, "every cell is distinct");
    assert_eq!(num_field(&stats, "cores"), 2, "two distinct loop cores");
    assert_eq!(
        num_field(&stats, "core_machine_keys"),
        6,
        "each core fans out to three machine keys"
    );
}

#[test]
fn giving_machine_and_machines_together_is_rejected() {
    let mut service = Service::default();
    let input = format!(
        "{{\"req\":\"schedule\",\"id\":9,\"machine\":\"govindarajan\",\
         \"machines\":[\"perfect-club\"],\"loops\":[{}]}}\n",
        quoted(&loop_text("both"))
    );
    let (out, _) = service.process(&input);
    let v = fields(out.lines().next().unwrap());
    assert_eq!(str_field(&v, "type"), "error");
    assert_eq!(str_field(&v, "stage"), "request");
    assert!(
        str_field(&v, "error").contains("not both"),
        "got: {}",
        str_field(&v, "error")
    );
}

#[test]
fn shutdown_drains_answers_bye_and_stops_reading() {
    let mut service = Service::default();
    let input = [
        schedule_request("1", &[loop_text("drain")]),
        "{\"req\":\"shutdown\",\"id\":\"bye\"}\n".to_string(),
        // Anything after shutdown must never be read, let alone answered.
        schedule_request("99", &[loop_text("ghost")]),
    ]
    .concat();
    let (out, shutdown) = service.process(&input);
    assert!(shutdown);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "result + done + bye:\n{out}");
    assert_eq!(str_field(&fields(lines[0]), "type"), "result");
    let bye = fields(lines[2]);
    assert_eq!(str_field(&bye, "type"), "bye");
    assert_eq!(str_field(&bye, "id"), "bye");
    assert!(!out.contains("ghost"));
}

#[test]
fn eof_and_blank_lines_end_quietly() {
    let mut service = Service::default();
    let (out, shutdown) = service.process("");
    assert_eq!(out, "");
    assert!(!shutdown, "EOF is a clean stop, not a shutdown");
    let (out, shutdown) = service.process("\n   \n\n");
    assert_eq!(out, "");
    assert!(!shutdown);
}

#[test]
fn the_unix_socket_transport_speaks_the_same_protocol() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("hrms-serve-test-{}.sock", std::process::id()));
    let server = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut service = Service::default();
            service.serve_unix(&path).expect("socket serves");
        })
    };
    // The listener may not be bound yet: retry the connect briefly.
    let mut stream = None;
    for _ in 0..200 {
        match UnixStream::connect(&path) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    let mut stream = stream.expect("connected to the service socket");
    let request = [
        schedule_request("42", &[loop_text("sock")]),
        "{\"req\":\"shutdown\",\"id\":\"s\"}\n".to_string(),
    ]
    .concat();
    stream.write_all(request.as_bytes()).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 3, "result + done + bye over the socket");
    assert_eq!(str_field(&fields(&lines[0]), "loop"), "sock");
    assert_eq!(str_field(&fields(&lines[2]), "type"), "bye");
    server.join().expect("server thread exits after shutdown");
    assert!(!path.exists(), "socket file removed on clean shutdown");
}
