//! Differential and property tests of the enumeration-free recurrence
//! analysis, the per-node cycle-ratio analysis and the incremental per-II
//! start times.
//!
//! Four guarantees are pinned here, mirroring the module docs of
//! `hrms_ddg::recurrence`, `hrms_ddg::cycle_ratio` and
//! `hrms_ddg::analysis`:
//!
//! 1. Across the 24-loop reference suite, 200+ generated loops,
//!    multi-component merges and the interleaved-recurrence suite, the
//!    SCC-derived recurrence groups are **exactly interchangeable** with
//!    Johnson's circuit enumeration — identical subgraphs, identical
//!    simplified node lists, identical pre-orderings, with the
//!    multi-backward-edge coarsening *counted and proven zero* (the old
//!    "1 in 200" documented exception is gone). Circuits threading three
//!    or more backward edges (absent from those corpora; present in the
//!    moderately dense shapes) are the only remaining fallback, and every
//!    occurrence is quantified by the [`cross_check`] report.
//! 2. The per-node cycle-ratio bound equals, node for node, the maximum
//!    `RecMII` over the enumerated circuits through that node wherever
//!    the enumeration completes in the two-edge regime, and its per-SCC
//!    maximum equals the exact component `RecMII` on **every** suite —
//!    recurrence-heavy stress loops included, where no enumeration can
//!    run at all.
//! 3. The recurrence-heavy stress suite (dense SCCs, hundreds of backward
//!    edges, 500–2000 ops) is analysed and scheduled **without any
//!    enumeration budget**: the new path has no truncation by
//!    construction, while the enumeration provably blows its budget on
//!    the very same loops.
//! 4. Advancing `IncrementalStarts` from II to II+1 yields exactly the
//!    same earliest/latest start times as a from-scratch Bellman-Ford pass
//!    at every escalation step.

use std::collections::HashSet;

use hrms_repro::ddg::analysis::{exact_rec_mii, latest_starts_from, longest_paths, DepEdge};
use hrms_repro::ddg::recurrence::{cross_check, CrossCheckReport};
use hrms_repro::ddg::{
    scc, CycleRatios, Ddg, DdgBuilder, IncrementalStarts, LoopAnalysis, NodeId, RecurrenceGroups,
    RecurrenceInfo,
};
use hrms_repro::hrms::{pre_order, pre_order_legacy, HrmsScheduler};
use hrms_repro::machine::presets;
use hrms_repro::modsched::{validate_schedule, ModuloScheduler};
use hrms_repro::workloads::{reference24, synthetic, GeneratorConfig, LoopGenerator};

/// Builds a deterministic generator loop.
fn generated(seed: u64, size: usize, recurrence_probability: f64, extra: usize) -> Ddg {
    let config = GeneratorConfig {
        min_ops: size.max(3),
        mean_ops: size as f64,
        max_ops: size.max(3) + 6,
        recurrence_probability,
        extra_backward_edges: extra,
        ..GeneratorConfig::default()
    };
    LoopGenerator::new(seed, config).next_loop()
}

/// Concatenates two loops into one multi-component graph.
fn merged(a: &Ddg, b: &Ddg) -> Ddg {
    let mut bld = DdgBuilder::new(format!("{}+{}", a.name(), b.name()));
    for (half, g) in [a, b].into_iter().enumerate() {
        let ids: Vec<NodeId> = g
            .nodes()
            .map(|(_, n)| bld.node(format!("h{half}_{}", n.name()), n.kind(), n.latency()))
            .collect();
        for (_, e) in g.edges() {
            bld.edge(
                ids[e.source().index()],
                ids[e.target().index()],
                e.kind(),
                e.distance(),
            )
            .expect("merged ids are in range");
        }
    }
    bld.build().expect("merging two valid loops is valid")
}

/// Cross-checks the SCC-derived groups of `g` against a complete
/// enumeration (skipping the loop when even a generous budget truncates),
/// returning the report with the counted multi-edge statistics.
fn check_against_enumeration(g: &Ddg) -> Option<CrossCheckReport> {
    let oracle = RecurrenceInfo::analyze_with_budget(g, 200_000);
    if oracle.truncated {
        return None;
    }
    let la = LoopAnalysis::analyze(g);
    let groups = la.recurrence_groups();
    Some(cross_check(groups, &oracle).unwrap_or_else(|e| panic!("`{}`: {e}", g.name())))
}

/// Asserts that `g`'s analyses are exactly interchangeable with the
/// enumeration **and** that the two pre-ordering paths are byte-identical
/// — the end-to-end form of "the cycle-ratio ranking matches Johnson's
/// ordering". Returns the report for corpus-wide accounting.
fn assert_exact_and_order_identical(g: &Ddg) -> CrossCheckReport {
    let report = check_against_enumeration(g)
        .unwrap_or_else(|| panic!("`{}`: enumeration truncated", g.name()));
    assert!(
        report.is_exact(),
        "`{}`: coarsening left over: {report:?}",
        g.name()
    );
    let dense = pre_order(&hrms_repro::ddg::LoopAnalysis::analyze(g));
    let legacy = pre_order_legacy(g);
    assert!(!legacy.truncated, "`{}`: legacy budget hit", g.name());
    assert_eq!(
        dense,
        legacy,
        "`{}`: cycle-ratio ranking diverges from Johnson's ordering",
        g.name()
    );
    report
}

/// The per-node oracle: for every node, the maximum `RecMII` over the
/// **enumerated** circuits containing it (0 for nodes on no circuit).
fn per_node_from_circuits(g: &Ddg, oracle: &RecurrenceInfo) -> Vec<u64> {
    let mut best = vec![0u64; g.num_nodes()];
    for c in &oracle.circuits {
        for &n in &c.nodes {
            best[n.index()] = best[n.index()].max(c.rec_mii());
        }
    }
    best
}

/// The exact node-latency-metric `RecMII` of one strongly connected
/// component (member self-loops included), via the Bellman-Ford binary
/// search — the independent reference for the per-SCC maximum property.
fn scc_rec_mii_node_metric(g: &Ddg, component: &[NodeId]) -> u64 {
    let members: HashSet<NodeId> = component.iter().copied().collect();
    let edges: Vec<DepEdge> = g
        .edges()
        .filter(|(_, e)| members.contains(&e.source()) && members.contains(&e.target()))
        .map(|(_, e)| DepEdge {
            source: e.source().0,
            target: e.target().0,
            latency: g.node(e.source()).latency(),
            distance: e.distance(),
        })
        .collect();
    exact_rec_mii(g.num_nodes(), &edges).map_or(u64::MAX, u64::from)
}

/// Every node of a non-trivial SCC must appear in at least one group:
/// the coverage invariant that replaces the enumeration's budget flag.
fn assert_full_coverage(g: &Ddg, groups: &RecurrenceGroups) {
    let in_group: HashSet<NodeId> = groups
        .groups
        .iter()
        .flat_map(|gr| gr.nodes.iter().copied())
        .collect();
    for comp in scc::strongly_connected_components(g) {
        if comp.len() < 2 {
            continue;
        }
        for n in comp {
            assert!(
                in_group.contains(&n),
                "`{}`: recurrence node {n} not covered by any group",
                g.name()
            );
        }
    }
}

#[test]
fn reference24_grouping_matches_the_enumeration_exactly() {
    for g in reference24::all() {
        let report = assert_exact_and_order_identical(&g);
        assert_eq!(
            report.interleaved_subgraphs, 0,
            "every reference loop is in the single-backward-edge regime"
        );
    }
}

#[test]
fn generated_corpus_has_no_coarsening_carve_out() {
    // The acceptance bar of the cycle-ratio analysis: the grouping, the
    // simplified node lists AND the pre-ordering match Johnson's
    // enumeration on every corpus loop — including the interleaved
    // multi-backward-edge one that used to be the "1 in 200" documented
    // exception. The coarsening statistic must come out exactly zero.
    let mut checked = 0usize;
    let mut interleaved_loops = 0usize;
    let mut total = CrossCheckReport {
        ordering_match: true,
        ..CrossCheckReport::default()
    };
    for seed in 0..100u64 {
        let size = 4 + (seed as usize * 7) % 44;
        for rec_prob in [0.0, 0.8] {
            let g = generated(seed, size, rec_prob, 0);
            let report = assert_exact_and_order_identical(&g);
            interleaved_loops += usize::from(report.interleaved_subgraphs > 0);
            total.absorb(&report);
            checked += 1;
        }
    }
    assert!(checked >= 200, "the corpus must cover at least 200 loops");
    assert!(
        interleaved_loops >= 1,
        "the corpus must keep exercising the interleaved regime"
    );
    assert_eq!(total.coarsening(), 0, "proven-zero coarsening: {total:?}");
    assert!(total.ordering_match);
}

#[test]
fn interleaved_suite_matches_johnson_ordering_exactly() {
    // Loops that *force* circuits threading two backward edges — the
    // regime the pre-cycle-ratio analysis coarsened into one residual
    // group per SCC. Grouping, node lists, per-subgraph RecMII and the
    // full pre-ordering must now all match the enumeration.
    for g in synthetic::interleaved_recurrence_suite() {
        let report = assert_exact_and_order_identical(&g);
        assert!(
            report.interleaved_subgraphs > 0,
            "`{}` must contain a multi-backward-edge subgraph",
            g.name()
        );
        assert_eq!(report.residual_groups, 0, "`{}`", g.name());
    }
}

#[test]
fn multi_component_grouping_matches_the_enumeration() {
    for seed in 0..20u64 {
        let a = generated(seed, 6 + (seed as usize % 20), 0.7, 0);
        let b = generated(seed + 1000, 4 + (seed as usize % 14), 0.0, 0);
        let g = merged(&a, &b);
        assert_exact_and_order_identical(&g);
    }
}

#[test]
fn per_node_bounds_match_the_enumerated_circuits() {
    // Node for node, the cycle-ratio bound equals the maximum RecMII over
    // the enumerated circuits through that node, on every corpus loop in
    // the ≤ 2-backward-edge regime (which test
    // `generated_corpus_has_no_coarsening_carve_out` proves is the whole
    // reference + generated + interleaved corpus).
    let mut graphs = reference24::all();
    for seed in 0..50u64 {
        let size = 4 + (seed as usize * 7) % 44;
        graphs.push(generated(seed, size, 0.8, 0));
    }
    graphs.extend(synthetic::interleaved_recurrence_suite());
    let mut nodes_checked = 0usize;
    for g in &graphs {
        let oracle = RecurrenceInfo::analyze_with_budget(g, 200_000);
        assert!(!oracle.truncated, "`{}`", g.name());
        if oracle
            .subgraphs
            .iter()
            .any(|sg| sg.backward_edges.len() > 2)
        {
            continue; // deeper interleavings only promise the max property
        }
        let expected = per_node_from_circuits(g, &oracle);
        let ratios = CycleRatios::analyze(g);
        assert_eq!(
            ratios.per_node(),
            &expected[..],
            "`{}`: per-node bounds diverge from the circuit oracle",
            g.name()
        );
        nodes_checked += g.num_nodes();
    }
    assert!(nodes_checked > 1000, "the property must cover many nodes");
}

#[test]
fn per_scc_maximum_equals_the_exact_rec_mii_everywhere() {
    // max(per-node bound) == exact component RecMII on every SCC — the
    // invariant that holds with *no* enumerability requirement, pinned
    // across the reference corpus, the interleaved suite and the
    // recurrence-heavy stress loops whose enumeration cannot complete.
    let mut graphs = reference24::all();
    for seed in 0..20u64 {
        graphs.push(generated(seed, 10 + (seed as usize * 5) % 30, 0.8, 0));
    }
    graphs.extend(synthetic::interleaved_recurrence_suite());
    graphs.push(synthetic::recurrence_heavy_suite().remove(0));
    let mut sccs_checked = 0usize;
    for g in &graphs {
        let ratios = CycleRatios::analyze(g);
        for component in scc::strongly_connected_components(g) {
            let has_self_loop = g
                .edges()
                .any(|(_, e)| e.is_self_loop() && e.source() == component[0]);
            if component.len() < 2 && !has_self_loop {
                continue;
            }
            let expected = scc_rec_mii_node_metric(g, &component);
            let max_bound = component
                .iter()
                .map(|&n| ratios.bound(n))
                .max()
                .unwrap_or(0);
            assert_eq!(
                max_bound,
                expected,
                "`{}`: SCC {:?} max per-node bound diverges",
                g.name(),
                component
            );
            sccs_checked += 1;
        }
    }
    assert!(sccs_checked > 50, "the property must cover many SCCs");
}

#[test]
fn moderately_dense_recurrence_shapes_quantify_their_coarsening() {
    // The recurrence-heavy generator shape scaled down to sizes where the
    // enumeration still completes: overlapping ancestor back edges over
    // 20-60 operations, including circuits threading three or more
    // backward edges — the one regime that still falls back to residual
    // coarsening. The fallback is *counted*, not silent: the loops in the
    // ≤ 2-edge regime must be exact, and the census of the rest is pinned
    // so any regression (or improvement) shows up here.
    let mut checked = 0usize;
    let mut exact = 0usize;
    let mut shallow = 0usize; // loops whose subgraphs all use ≤ 2 edges
    let mut total = CrossCheckReport {
        ordering_match: true,
        ..CrossCheckReport::default()
    };
    for seed in 0..30u64 {
        let size = 20 + (seed as usize * 3) % 40;
        let g = generated(seed ^ 0xDEAD, size, 1.0, 2 + (seed as usize % 5));
        let oracle = RecurrenceInfo::analyze_with_budget(&g, 200_000);
        if oracle.truncated {
            continue;
        }
        let la = LoopAnalysis::analyze(&g);
        let report = cross_check(la.recurrence_groups(), &oracle)
            .unwrap_or_else(|e| panic!("`{}`: {e}", g.name()));
        if oracle
            .subgraphs
            .iter()
            .all(|sg| sg.backward_edges.len() <= 2)
        {
            shallow += 1;
            assert!(
                report.is_exact(),
                "`{}`: a ≤2-edge loop must be exact: {report:?}",
                g.name()
            );
        }
        checked += 1;
        exact += usize::from(report.is_exact());
        total.absorb(&report);
    }
    assert!(
        checked >= 20,
        "only {checked}/30 dense shapes kept the enumeration under budget"
    );
    assert!(shallow >= 10, "the ≤2-edge regime must stay represented");
    // The measured census at the time of writing: 27/30 exact, 4 of 23
    // interleaved subgraphs coarsened (all on loops with ≥3-edge
    // circuits). Allow slack, but a collapse of exactness fails here.
    assert!(
        exact * 10 >= checked * 8,
        "only {exact}/{checked} dense shapes exact: {total:?}"
    );
}

#[test]
fn recurrence_heavy_suite_needs_no_budget_while_the_enumeration_truncates() {
    for g in synthetic::recurrence_heavy_suite() {
        // The new path: complete, polynomial, no truncation to even report.
        let la = LoopAnalysis::analyze(&g);
        let groups = la.recurrence_groups();
        assert!(groups.has_recurrence());
        assert_full_coverage(&g, groups);

        // The old path on the same loop: the budget is provably hit (this
        // is the regime the ROADMAP excluded from the stress preset).
        let oracle = RecurrenceInfo::analyze_with_budget(&g, 10_000);
        assert!(
            oracle.truncated,
            "`{}` ({} ops): enumeration unexpectedly completed",
            g.name(),
            g.num_nodes()
        );

        // And the pre-ordering built on the groups is a valid permutation.
        let p = pre_order(&hrms_repro::ddg::LoopAnalysis::analyze(&g));
        assert!(!p.truncated);
        let mut sorted = p.order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.num_nodes(), "`{}`", g.name());
        assert!(p.recurrence_subgraphs > 0);
    }
}

#[test]
fn recurrence_heavy_loop_schedules_end_to_end() {
    // Full HRMS run on the 500-op recurrence-heavy loop: MII, pre-order
    // and placement all ride the enumeration-free path.
    let g = synthetic::recurrence_heavy_suite().remove(0);
    let m = presets::perfect_club();
    let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
    validate_schedule(&g, &m, &outcome.schedule).unwrap();
    assert!(
        !outcome.recurrence_truncated,
        "the default path must never truncate"
    );
    assert!(outcome.metrics.ii >= outcome.metrics.rec_mii);
}

#[test]
fn legacy_preordering_surfaces_enumeration_truncation() {
    // A dense SCC past the default circuit budget: the legacy (Johnson)
    // path must report the truncation it used to swallow, while the dense
    // path has nothing to truncate.
    let mut bld = DdgBuilder::new("k9");
    let ids: Vec<NodeId> = (0..9)
        .map(|i| bld.node(format!("n{i}"), hrms_repro::ddg::OpKind::FpAdd, 1))
        .collect();
    for &u in &ids {
        for &v in &ids {
            if u != v {
                bld.edge(u, v, hrms_repro::ddg::DepKind::RegFlow, 1)
                    .unwrap();
            }
        }
    }
    let g = bld.build().unwrap();
    let legacy = pre_order_legacy(&g);
    assert!(legacy.truncated, "K9 has ~125k elementary circuits");
    let dense = pre_order(&hrms_repro::ddg::LoopAnalysis::analyze(&g));
    assert!(!dense.truncated);
    assert_eq!(dense.order.len(), g.num_nodes());

    // The truncation flows through to the scheduler outcome only via the
    // legacy analysis; the default scheduler reports a clean run.
    let m = presets::govindarajan();
    let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
    assert!(!outcome.recurrence_truncated);
    validate_schedule(&g, &m, &outcome.schedule).unwrap();
}

#[test]
fn incremental_starts_equal_scratch_recomputation_at_every_escalation_step() {
    let mut graphs = reference24::all();
    for seed in 0..30u64 {
        graphs.push(generated(seed, 6 + (seed as usize * 5) % 30, 0.7, 0));
    }
    graphs.push(generated(7, 40, 1.0, 6)); // dense-recurrence shape
    let mut escalations = 0usize;
    for g in &graphs {
        let la = LoopAnalysis::analyze(g);
        let Some(rec_mii) = la.rec_mii() else {
            continue;
        };
        let n = g.num_nodes();
        let edges = la.dep_edges();
        let ii0 = rec_mii.max(1);
        if rec_mii >= 1 {
            assert_eq!(
                IncrementalStarts::new(n, edges, rec_mii - 1).is_some(),
                longest_paths(n, edges, rec_mii - 1).is_some(),
                "`{}`: infeasibility must agree below RecMII",
                g.name()
            );
        }
        let mut inc = IncrementalStarts::new(n, edges, ii0).unwrap();
        for ii in ii0..ii0 + 8 {
            assert!(inc.advance(edges, ii), "`{}` is feasible at {ii}", g.name());
            let scratch_est = longest_paths(n, edges, ii).unwrap();
            assert_eq!(
                inc.earliest(),
                scratch_est,
                "`{}`: earliest starts diverge at II {ii}",
                g.name()
            );
            let horizon = scratch_est.iter().copied().max().unwrap_or(0)
                + g.nodes()
                    .map(|(_, o)| i64::from(o.latency()))
                    .max()
                    .unwrap();
            assert_eq!(
                inc.latest(horizon),
                latest_starts_from(n, edges, ii, horizon).unwrap(),
                "`{}`: latest starts diverge at II {ii}",
                g.name()
            );
            escalations += 1;
        }
    }
    assert!(
        escalations >= 8 * 40,
        "the property must cover hundreds of escalation steps"
    );
}
