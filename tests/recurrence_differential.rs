//! Differential and property tests of the enumeration-free recurrence
//! analysis and the incremental per-II start times.
//!
//! Three guarantees are pinned here, mirroring the module docs of
//! `hrms_ddg::recurrence` and `hrms_ddg::analysis`:
//!
//! 1. Across the 24-loop reference suite, 200+ generated loops,
//!    multi-component merges and moderately sized recurrence-heavy shapes,
//!    the SCC-derived recurrence groups match Johnson's circuit
//!    enumeration: identical subgraphs (nodes *and* per-subgraph RecMII)
//!    for every single-backward-edge subgraph, full equality — including
//!    the simplified node lists the pre-ordering consumes — whenever the
//!    enumeration found only such subgraphs, and complete node coverage
//!    for the rare interleaved multi-edge recurrences.
//! 2. The recurrence-heavy stress suite (dense SCCs, hundreds of backward
//!    edges, 500–2000 ops) is analysed and scheduled **without any
//!    enumeration budget**: the new path has no truncation by
//!    construction, while the enumeration provably blows its budget on
//!    the very same loops.
//! 3. Advancing `IncrementalStarts` from II to II+1 yields exactly the
//!    same earliest/latest start times as a from-scratch Bellman-Ford pass
//!    at every escalation step.

use std::collections::HashSet;

use hrms_repro::ddg::analysis::{latest_starts_from, longest_paths};
use hrms_repro::ddg::recurrence::cross_check;
use hrms_repro::ddg::{
    scc, Ddg, DdgBuilder, IncrementalStarts, LoopAnalysis, NodeId, RecurrenceGroups, RecurrenceInfo,
};
use hrms_repro::hrms::{pre_order, pre_order_legacy, HrmsScheduler};
use hrms_repro::machine::presets;
use hrms_repro::modsched::{validate_schedule, ModuloScheduler};
use hrms_repro::workloads::{reference24, synthetic, GeneratorConfig, LoopGenerator};

/// Builds a deterministic generator loop.
fn generated(seed: u64, size: usize, recurrence_probability: f64, extra: usize) -> Ddg {
    let config = GeneratorConfig {
        min_ops: size.max(3),
        mean_ops: size as f64,
        max_ops: size.max(3) + 6,
        recurrence_probability,
        extra_backward_edges: extra,
        ..GeneratorConfig::default()
    };
    LoopGenerator::new(seed, config).next_loop()
}

/// Concatenates two loops into one multi-component graph.
fn merged(a: &Ddg, b: &Ddg) -> Ddg {
    let mut bld = DdgBuilder::new(format!("{}+{}", a.name(), b.name()));
    for (half, g) in [a, b].into_iter().enumerate() {
        let ids: Vec<NodeId> = g
            .nodes()
            .map(|(_, n)| bld.node(format!("h{half}_{}", n.name()), n.kind(), n.latency()))
            .collect();
        for (_, e) in g.edges() {
            bld.edge(
                ids[e.source().index()],
                ids[e.target().index()],
                e.kind(),
                e.distance(),
            )
            .expect("merged ids are in range");
        }
    }
    bld.build().expect("merging two valid loops is valid")
}

/// Cross-checks the SCC-derived groups of `g` against a complete
/// enumeration (skipping the loop when even a generous budget truncates).
/// Returns whether the enumeration found only single-backward-edge
/// subgraphs, i.e. the regime of provable full equality.
fn check_against_enumeration(g: &Ddg) -> Option<bool> {
    let oracle = RecurrenceInfo::analyze_with_budget(g, 200_000);
    if oracle.truncated {
        return None;
    }
    let la = LoopAnalysis::analyze(g);
    let groups = la.recurrence_groups();
    cross_check(groups, &oracle).unwrap_or_else(|e| panic!("`{}`: {e}", g.name()));
    Some(oracle.all_single_backward_edge())
}

/// Every node of a non-trivial SCC must appear in at least one group:
/// the coverage invariant that replaces the enumeration's budget flag.
fn assert_full_coverage(g: &Ddg, groups: &RecurrenceGroups) {
    let in_group: HashSet<NodeId> = groups
        .groups
        .iter()
        .flat_map(|gr| gr.nodes.iter().copied())
        .collect();
    for comp in scc::strongly_connected_components(g) {
        if comp.len() < 2 {
            continue;
        }
        for n in comp {
            assert!(
                in_group.contains(&n),
                "`{}`: recurrence node {n} not covered by any group",
                g.name()
            );
        }
    }
}

#[test]
fn reference24_grouping_matches_the_enumeration() {
    let mut full_equality = 0usize;
    for g in reference24::all() {
        match check_against_enumeration(&g) {
            Some(true) => full_equality += 1,
            Some(false) => {}
            None => panic!("`{}`: reference loop truncated the enumeration", g.name()),
        }
    }
    assert_eq!(
        full_equality, 24,
        "every reference loop is in the single-backward-edge regime"
    );
}

#[test]
fn generated_corpus_grouping_matches_the_enumeration() {
    let mut checked = 0usize;
    let mut full_equality = 0usize;
    for seed in 0..100u64 {
        let size = 4 + (seed as usize * 7) % 44;
        for rec_prob in [0.0, 0.8] {
            let g = generated(seed, size, rec_prob, 0);
            match check_against_enumeration(&g) {
                Some(true) => full_equality += 1,
                Some(false) => {}
                None => panic!("`{}` (seed {seed}): enumeration truncated", g.name()),
            }
            checked += 1;
        }
    }
    assert!(checked >= 200, "the corpus must cover at least 200 loops");
    assert!(
        full_equality >= checked * 95 / 100,
        "only {full_equality}/{checked} loops reached full equality"
    );
}

#[test]
fn multi_component_grouping_matches_the_enumeration() {
    for seed in 0..20u64 {
        let a = generated(seed, 6 + (seed as usize % 20), 0.7, 0);
        let b = generated(seed + 1000, 4 + (seed as usize % 14), 0.0, 0);
        let g = merged(&a, &b);
        assert!(
            check_against_enumeration(&g).is_some(),
            "`{}`: enumeration truncated",
            g.name()
        );
    }
}

#[test]
fn moderately_dense_recurrence_shapes_match_the_enumeration() {
    // The recurrence-heavy generator shape scaled down to sizes where the
    // enumeration still completes: interleaved ancestor back edges over
    // 20-60 operations. These exercise the multi-edge coverage clause of
    // the cross-check as well as the single-edge equality.
    let mut checked = 0usize;
    for seed in 0..30u64 {
        let size = 20 + (seed as usize * 3) % 40;
        let g = generated(seed ^ 0xDEAD, size, 1.0, 2 + (seed as usize % 5));
        if check_against_enumeration(&g).is_some() {
            checked += 1;
        }
    }
    assert!(
        checked >= 20,
        "only {checked}/30 dense shapes kept the enumeration under budget"
    );
}

#[test]
fn recurrence_heavy_suite_needs_no_budget_while_the_enumeration_truncates() {
    for g in synthetic::recurrence_heavy_suite() {
        // The new path: complete, polynomial, no truncation to even report.
        let la = LoopAnalysis::analyze(&g);
        let groups = la.recurrence_groups();
        assert!(groups.has_recurrence());
        assert_full_coverage(&g, groups);

        // The old path on the same loop: the budget is provably hit (this
        // is the regime the ROADMAP excluded from the stress preset).
        let oracle = RecurrenceInfo::analyze_with_budget(&g, 10_000);
        assert!(
            oracle.truncated,
            "`{}` ({} ops): enumeration unexpectedly completed",
            g.name(),
            g.num_nodes()
        );

        // And the pre-ordering built on the groups is a valid permutation.
        let p = pre_order(&g);
        assert!(!p.truncated);
        let mut sorted = p.order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.num_nodes(), "`{}`", g.name());
        assert!(p.recurrence_subgraphs > 0);
    }
}

#[test]
fn recurrence_heavy_loop_schedules_end_to_end() {
    // Full HRMS run on the 500-op recurrence-heavy loop: MII, pre-order
    // and placement all ride the enumeration-free path.
    let g = synthetic::recurrence_heavy_suite().remove(0);
    let m = presets::perfect_club();
    let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
    validate_schedule(&g, &m, &outcome.schedule).unwrap();
    assert!(
        !outcome.recurrence_truncated,
        "the default path must never truncate"
    );
    assert!(outcome.metrics.ii >= outcome.metrics.rec_mii);
}

#[test]
fn legacy_preordering_surfaces_enumeration_truncation() {
    // A dense SCC past the default circuit budget: the legacy (Johnson)
    // path must report the truncation it used to swallow, while the dense
    // path has nothing to truncate.
    let mut bld = DdgBuilder::new("k9");
    let ids: Vec<NodeId> = (0..9)
        .map(|i| bld.node(format!("n{i}"), hrms_repro::ddg::OpKind::FpAdd, 1))
        .collect();
    for &u in &ids {
        for &v in &ids {
            if u != v {
                bld.edge(u, v, hrms_repro::ddg::DepKind::RegFlow, 1)
                    .unwrap();
            }
        }
    }
    let g = bld.build().unwrap();
    let legacy = pre_order_legacy(&g);
    assert!(legacy.truncated, "K9 has ~125k elementary circuits");
    let dense = pre_order(&g);
    assert!(!dense.truncated);
    assert_eq!(dense.order.len(), g.num_nodes());

    // The truncation flows through to the scheduler outcome only via the
    // legacy analysis; the default scheduler reports a clean run.
    let m = presets::govindarajan();
    let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
    assert!(!outcome.recurrence_truncated);
    validate_schedule(&g, &m, &outcome.schedule).unwrap();
}

#[test]
fn incremental_starts_equal_scratch_recomputation_at_every_escalation_step() {
    let mut graphs = reference24::all();
    for seed in 0..30u64 {
        graphs.push(generated(seed, 6 + (seed as usize * 5) % 30, 0.7, 0));
    }
    graphs.push(generated(7, 40, 1.0, 6)); // dense-recurrence shape
    let mut escalations = 0usize;
    for g in &graphs {
        let la = LoopAnalysis::analyze(g);
        let Some(rec_mii) = la.rec_mii() else {
            continue;
        };
        let n = g.num_nodes();
        let edges = la.dep_edges();
        let ii0 = rec_mii.max(1);
        if rec_mii >= 1 {
            assert_eq!(
                IncrementalStarts::new(n, edges, rec_mii - 1).is_some(),
                longest_paths(n, edges, rec_mii - 1).is_some(),
                "`{}`: infeasibility must agree below RecMII",
                g.name()
            );
        }
        let mut inc = IncrementalStarts::new(n, edges, ii0).unwrap();
        for ii in ii0..ii0 + 8 {
            assert!(inc.advance(edges, ii), "`{}` is feasible at {ii}", g.name());
            let scratch_est = longest_paths(n, edges, ii).unwrap();
            assert_eq!(
                inc.earliest(),
                scratch_est,
                "`{}`: earliest starts diverge at II {ii}",
                g.name()
            );
            let horizon = scratch_est.iter().copied().max().unwrap_or(0)
                + g.nodes()
                    .map(|(_, o)| i64::from(o.latency()))
                    .max()
                    .unwrap();
            assert_eq!(
                inc.latest(horizon),
                latest_starts_from(n, edges, ii, horizon).unwrap(),
                "`{}`: latest starts diverge at II {ii}",
                g.name()
            );
            escalations += 1;
        }
    }
    assert!(
        escalations >= 8 * 40,
        "the property must cover hundreds of escalation steps"
    );
}
