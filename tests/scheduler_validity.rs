//! Cross-crate integration tests: every scheduler produces valid schedules
//! on every workload family, and the derived metrics are mutually
//! consistent.

use hrms_repro::baselines::all_baselines;
use hrms_repro::prelude::*;

fn all_schedulers() -> Vec<Box<dyn ModuloScheduler>> {
    let mut v: Vec<Box<dyn ModuloScheduler>> = vec![Box::new(HrmsScheduler::new())];
    v.extend(all_baselines());
    v
}

fn workload_sample() -> Vec<Ddg> {
    let mut loops = motivating::all();
    loops.extend(reference24::all());
    loops.extend(synthetic::perfect_club_like_sized(20));
    loops
}

#[test]
fn every_scheduler_produces_valid_schedules_on_every_workload() {
    let machines = [presets::govindarajan(), presets::perfect_club()];
    let schedulers = all_schedulers();
    for ddg in workload_sample() {
        for machine in &machines {
            for scheduler in &schedulers {
                // The exhaustive scheduler is exercised only on small loops
                // to keep the test fast.
                if scheduler.name().starts_with("B&B") && ddg.num_nodes() > 12 {
                    continue;
                }
                let outcome = scheduler.schedule_loop(&ddg, machine).unwrap_or_else(|e| {
                    panic!("{} failed on `{}`: {e}", scheduler.name(), ddg.name())
                });
                validate_schedule(&ddg, machine, &outcome.schedule).unwrap_or_else(|e| {
                    panic!(
                        "{} produced an invalid schedule on `{}`: {e}",
                        scheduler.name(),
                        ddg.name()
                    )
                });
                assert!(outcome.metrics.ii >= outcome.metrics.mii);
                assert!(outcome.metrics.stage_count >= 1);
            }
        }
    }
}

#[test]
fn metrics_are_internally_consistent() {
    let machine = presets::perfect_club();
    let hrms = HrmsScheduler::new();
    for ddg in workload_sample() {
        let outcome = hrms.schedule_loop(&ddg, &machine).unwrap();
        let lifetimes = LifetimeAnalysis::analyze(&ddg, &outcome.schedule);
        // MaxLive is a lower bound on buffers (per value, ceil(len/II)
        // instances are counted by both, and buffers add the stores).
        assert!(lifetimes.max_live() <= lifetimes.buffers());
        assert_eq!(outcome.metrics.max_live, lifetimes.max_live());
        assert_eq!(outcome.metrics.buffers, lifetimes.buffers());
        // Kernel row population matches the schedule.
        let kernel = outcome.schedule.kernel();
        assert_eq!(kernel.num_ops(), ddg.num_nodes());
        assert_eq!(kernel.ii(), outcome.schedule.ii());
        // Estimated cycles follow II × iterations.
        assert_eq!(
            outcome.schedule.estimated_cycles(ddg.iteration_count()),
            u64::from(outcome.metrics.ii) * ddg.iteration_count()
        );
    }
}

#[test]
fn rotating_allocation_succeeds_on_every_hrms_schedule() {
    let machine = presets::perfect_club();
    let hrms = HrmsScheduler::new();
    for ddg in workload_sample() {
        let outcome = hrms.schedule_loop(&ddg, &machine).unwrap();
        let allocation = allocate_rotating(&ddg, &outcome.schedule);
        assert!(allocation.registers >= allocation.max_live);
        // On the structured (paper / reference) loops the end-fit strategy
        // stays within a few registers of the MaxLive lower bound; randomly
        // generated lifetime patterns can cost a little more, so only the
        // lower bound is asserted for those.
        if !ddg.name().starts_with("synthetic") {
            assert!(
                allocation.overhead() <= 4,
                "`{}` needed {} rotating registers for MaxLive {}",
                ddg.name(),
                allocation.registers,
                allocation.max_live
            );
        }
    }
}

#[test]
fn spill_scheduling_respects_budgets_across_schedulers() {
    let machine = presets::perfect_club();
    let loops = synthetic::perfect_club_like_sized(10);
    for ddg in &loops {
        for scheduler in [
            &HrmsScheduler::new() as &dyn ModuloScheduler,
            &TopDownScheduler::new() as &dyn ModuloScheduler,
        ] {
            let unlimited =
                schedule_with_register_budget(ddg, &machine, scheduler, &SpillConfig::new(10_000))
                    .unwrap();
            let baseline = unlimited.registers(PressureKind::VariantsAndInvariants);
            let budget = (baseline / 2).max(4);
            let result =
                schedule_with_register_budget(ddg, &machine, scheduler, &SpillConfig::new(budget))
                    .unwrap();
            validate_schedule(&result.ddg, &machine, &result.outcome.schedule).unwrap();
            if result.fits {
                assert!(result.registers(PressureKind::VariantsAndInvariants) <= budget);
            }
            assert!(result.outcome.metrics.ii >= unlimited.outcome.metrics.ii);
        }
    }
}

#[test]
fn preordering_covers_every_node_exactly_once_on_all_workloads() {
    for ddg in workload_sample() {
        let order =
            hrms_repro::hrms::pre_order(&hrms_repro::ddg::LoopAnalysis::analyze(&ddg)).order;
        let mut sorted: Vec<NodeId> = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ddg.num_nodes(), "`{}`", ddg.name());
    }
}
