//! Golden-output tests for the `hrms` CLI.
//!
//! The same invocations the CI smoke step runs against the compiled binary
//! are driven here in-process through [`hrms_repro::cli::run`], and the
//! concatenated output is diffed byte-for-byte against
//! `tests/golden/schedule_smoke.txt`. If an intentional change alters the
//! output, regenerate the golden file with the commands listed in that
//! file's CI step (`.github/workflows/ci.yml`) and commit both.

use hrms_repro::cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn example_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/examples/loops/dotprod.loop").to_string()
}

fn golden() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/schedule_smoke.txt"
    ))
    .unwrap()
}

#[test]
fn schedule_smoke_output_matches_the_golden_file() {
    let example = example_path();
    let mut actual = String::new();
    for machine in ["govindarajan", "perfect-club"] {
        actual.push_str(
            &run(
                &args(&[
                    "schedule",
                    &example,
                    "--scheduler",
                    "hrms,slack",
                    "--machine",
                    machine,
                    "--certify",
                ]),
                "",
            )
            .unwrap(),
        );
    }
    assert_eq!(
        actual,
        golden(),
        "CLI output drifted from tests/golden/schedule_smoke.txt; \
         regenerate the golden file if the change is intentional"
    );
}

#[test]
fn stdin_dash_matches_the_file_path() {
    let example = example_path();
    let contents = std::fs::read_to_string(&example).unwrap();
    let via_file = run(&args(&["schedule", &example]), "").unwrap();
    let via_stdin = run(&args(&["schedule", "-"]), &contents).unwrap();
    assert_eq!(via_file, via_stdin);
}

#[test]
fn json_emission_is_stable_and_cache_keyed() {
    let example = example_path();
    let a = run(
        &args(&["schedule", &example, "--scheduler", "all", "--emit", "json"]),
        "",
    )
    .unwrap();
    let b = run(
        &args(&["schedule", &example, "--scheduler", "all", "--emit", "json"]),
        "",
    )
    .unwrap();
    assert_eq!(a, b, "reports without --timing are deterministic");
    assert_eq!(a.lines().count(), 7, "one line per scheduler");
    let keys: Vec<&str> = a
        .lines()
        .map(|l| {
            let start = l.find("\"cache_key\":\"").unwrap() + "\"cache_key\":\"".len();
            &l[start..start + 16]
        })
        .collect();
    let mut unique = keys.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), keys.len(), "scheduler name salts the key");
}

#[test]
fn convert_to_dot_and_back_preserves_the_example() {
    let example = example_path();
    let as_dot = run(&args(&["convert", &example, "--to", "dot"]), "").unwrap();
    let back = run(&args(&["convert", "-", "--to", "loop"]), &as_dot).unwrap();
    let original = hrms_repro::ddg::parse_loops(&std::fs::read_to_string(&example).unwrap())
        .unwrap()
        .remove(0);
    let reimported = hrms_repro::ddg::parse_loops(&back).unwrap().remove(0);
    assert_eq!(
        hrms_repro::ddg::ddg_fingerprint(&original),
        hrms_repro::ddg::ddg_fingerprint(&reimported)
    );
}
