//! Property-based tests (proptest) over randomly generated loop bodies.
//!
//! The generator of `hrms-workloads` is driven by a proptest-chosen seed and
//! size, giving a wide variety of structurally valid dependence graphs; the
//! properties below must hold for every one of them.

use std::collections::HashSet;

use proptest::prelude::*;

use hrms_repro::ddg::LoopAnalysis;
use hrms_repro::hrms::{pre_order, preorder::backward_edges};
use hrms_repro::prelude::*;
use hrms_repro::workloads::GeneratorConfig;

/// Builds a deterministic random loop from a seed and target size.
fn generated_loop(seed: u64, size: usize, recurrences: bool) -> Ddg {
    let config = GeneratorConfig {
        min_ops: size.max(3),
        mean_ops: size as f64,
        max_ops: size.max(3) + 4,
        recurrence_probability: if recurrences { 0.7 } else { 0.0 },
        ..GeneratorConfig::default()
    };
    LoopGenerator::new(seed, config).next_loop()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pre-ordering is always a permutation of the nodes, and almost
    /// every node has an already-ordered neighbour (its reference
    /// operation). The exceptions the paper itself allows are the first node
    /// of each weakly-connected component and the first node of a recurrence
    /// subgraph that has no directed path to the hypernode (Section 3.2:
    /// "any node of the recurrence circuit is reduced to the Hypernode").
    #[test]
    fn preordering_is_a_permutation_with_references(
        seed in 0u64..10_000,
        size in 3usize..40,
        recurrences in any::<bool>(),
    ) {
        let ddg = generated_loop(seed, size, recurrences);
        let preorder = pre_order(&LoopAnalysis::analyze(&ddg));
        let order = &preorder.order;
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ddg.num_nodes());

        let mut placed: HashSet<NodeId> = HashSet::new();
        let mut without_reference = 0usize;
        for &n in order {
            let has_reference = ddg
                .predecessors(n)
                .into_iter()
                .chain(ddg.successors(n))
                .any(|x| placed.contains(&x));
            if !has_reference {
                without_reference += 1;
            }
            placed.insert(n);
        }
        prop_assert!(
            without_reference <= preorder.components + preorder.recurrence_subgraphs,
            "{} nodes were ordered without a reference (components {}, recurrence subgraphs {})",
            without_reference,
            preorder.components,
            preorder.recurrence_subgraphs
        );
    }

    /// The defining invariant of the ordering: ignoring the backward edges
    /// of recurrences, no node is ordered while both a predecessor and a
    /// successor are already in the partial order.
    #[test]
    fn preordering_never_traps_a_node_between_neighbours(
        seed in 0u64..10_000,
        size in 3usize..40,
    ) {
        let ddg = generated_loop(seed, size, true);
        let dropped = backward_edges(&ddg);
        let order = pre_order(&LoopAnalysis::analyze(&ddg)).order;
        let mut placed: HashSet<NodeId> = HashSet::new();
        for &n in &order {
            let mut preds_in = false;
            let mut succs_in = false;
            for (eid, e) in ddg.edges() {
                if dropped.contains(&eid) || e.is_self_loop() {
                    continue;
                }
                if e.target() == n && placed.contains(&e.source()) {
                    preds_in = true;
                }
                if e.source() == n && placed.contains(&e.target()) {
                    succs_in = true;
                }
            }
            prop_assert!(
                !(preds_in && succs_in),
                "node {} had both predecessors and successors already ordered",
                n
            );
            placed.insert(n);
        }
    }

    /// Every scheduler produces a schedule that passes the independent
    /// validator, at an II no smaller than the MII.
    #[test]
    fn schedulers_produce_valid_schedules(
        seed in 0u64..5_000,
        size in 3usize..28,
        recurrences in any::<bool>(),
    ) {
        let ddg = generated_loop(seed, size, recurrences);
        let machine = presets::perfect_club();
        let schedulers: Vec<Box<dyn ModuloScheduler>> = vec![
            Box::new(HrmsScheduler::new()),
            Box::new(TopDownScheduler::new()),
            Box::new(BottomUpScheduler::new()),
            Box::new(SlackScheduler::new()),
            Box::new(FrlcScheduler::new()),
            Box::new(IterativeScheduler::new()),
        ];
        for scheduler in &schedulers {
            let outcome = scheduler.schedule_loop(&ddg, &machine);
            let outcome = outcome.unwrap();
            prop_assert!(validate_schedule(&ddg, &machine, &outcome.schedule).is_ok(),
                "{} produced an invalid schedule", scheduler.name());
            prop_assert!(outcome.metrics.ii >= outcome.metrics.mii);
        }
    }

    /// Register metrics are mutually consistent: MaxLive never exceeds the
    /// buffer count, and the lifetime-instance arithmetic matches a brute
    /// force recount of live values per row.
    #[test]
    fn register_metrics_are_consistent(
        seed in 0u64..5_000,
        size in 3usize..30,
    ) {
        let ddg = generated_loop(seed, size, true);
        let machine = presets::perfect_club();
        let outcome = HrmsScheduler::new().schedule_loop(&ddg, &machine).unwrap();
        let lt = LifetimeAnalysis::analyze(&ddg, &outcome.schedule);
        prop_assert!(lt.max_live() <= lt.buffers());

        let ii = outcome.schedule.ii();
        for row in 0..ii {
            let mut brute = 0u64;
            for l in lt.lifetimes() {
                for k in -64i64..64 {
                    let c = i64::from(row) + k * i64::from(ii);
                    if c >= l.start && c < l.end {
                        brute += 1;
                    }
                }
            }
            prop_assert_eq!(lt.live_at_row(row), brute);
        }
    }

    /// The rotating-register allocator always produces a conflict-free
    /// packing of at least MaxLive registers and close to it.
    #[test]
    fn rotating_allocation_is_near_max_live(
        seed in 0u64..5_000,
        size in 3usize..26,
    ) {
        let ddg = generated_loop(seed, size, true);
        let machine = presets::perfect_club();
        let outcome = HrmsScheduler::new().schedule_loop(&ddg, &machine).unwrap();
        let allocation = allocate_rotating(&ddg, &outcome.schedule);
        prop_assert!(allocation.registers >= allocation.max_live);
        // The end-fit packing is heuristic: it reaches MaxLive (+1) on
        // realistic loops (checked in the integration tests) but can need a
        // few more registers on adversarial generated lifetime patterns, so
        // the property only pins the lower bound and the offset invariants.
        prop_assert!(allocation.offsets.len() <= ddg.num_nodes());
        for &offset in allocation.offsets.values() {
            prop_assert!(offset < allocation.registers.max(1));
        }
    }

    /// Spill insertion under a budget either fits the budget or honestly
    /// reports that it cannot, and never produces an invalid schedule.
    #[test]
    fn spilling_is_sound(
        seed in 0u64..2_000,
        size in 4usize..22,
        budget in 2u64..12,
    ) {
        let ddg = generated_loop(seed, size, true);
        let machine = presets::perfect_club();
        let result = schedule_with_register_budget(
            &ddg,
            &machine,
            &HrmsScheduler::new(),
            &SpillConfig {
                registers: budget,
                kind: PressureKind::VariantsOnly,
                max_rounds: 16,
            },
        )
        .unwrap();
        prop_assert!(validate_schedule(&result.ddg, &machine, &result.outcome.schedule).is_ok());
        if result.fits {
            prop_assert!(result.registers(PressureKind::VariantsOnly) <= budget);
        }
    }

    /// The MII lower bound is genuine: the recurrence bound computed by the
    /// exact binary search always matches the bound derived from explicit
    /// circuit enumeration when the enumeration is complete.
    #[test]
    fn rec_mii_matches_circuit_enumeration(
        seed in 0u64..10_000,
        size in 3usize..30,
    ) {
        let ddg = generated_loop(seed, size, true);
        let machine = presets::perfect_club();
        let mii = MiiInfo::compute(&machine, &LoopAnalysis::analyze(&ddg)).unwrap();
        let info = hrms_repro::ddg::RecurrenceInfo::analyze(&ddg);
        if !info.truncated {
            prop_assert_eq!(u64::from(mii.rec_mii), info.rec_mii_lower_bound());
        }
    }
}
