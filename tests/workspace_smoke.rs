//! End-to-end smoke test of the workspace wiring: every scheduler the
//! workspace ships (the six baselines plus HRMS) schedules every loop of
//! the 24-loop reference suite, and every schedule passes the independent
//! validator. A failure here means a crate boundary, re-export or
//! scheduler contract broke — regardless of which crate's unit tests
//! still pass.

use hrms_repro::baselines::all_baselines;
use hrms_repro::prelude::*;

#[test]
fn every_scheduler_schedules_every_reference_loop() {
    let machine = presets::govindarajan();
    let loops = reference24::all();
    assert_eq!(loops.len(), 24, "the reference suite should have 24 loops");

    let mut schedulers: Vec<Box<dyn ModuloScheduler>> = all_baselines();
    schedulers.push(Box::new(HrmsScheduler::new()));
    assert_eq!(schedulers.len(), 7);

    for ddg in &loops {
        for scheduler in &schedulers {
            let outcome = scheduler
                .schedule_loop(ddg, &machine)
                .unwrap_or_else(|e| panic!("{} failed on `{}`: {e}", scheduler.name(), ddg.name()));
            validate_schedule(ddg, &machine, &outcome.schedule).unwrap_or_else(|e| {
                panic!(
                    "{} produced an invalid schedule for `{}`: {e}",
                    scheduler.name(),
                    ddg.name()
                )
            });
            assert!(
                outcome.metrics.ii >= outcome.metrics.mii,
                "{} scheduled `{}` below the MII ({} < {})",
                scheduler.name(),
                ddg.name(),
                outcome.metrics.ii,
                outcome.metrics.mii
            );
        }
    }
}
