//! Golden-output test for the `hrms serve` protocol.
//!
//! The same scripted request file the CI smoke step pipes through the
//! compiled binary (`target/release/hrms serve <
//! tests/fixtures/serve/requests.jsonl`) is driven here in-process, and
//! the response stream is diffed byte-for-byte against
//! `tests/golden/serve_smoke.txt`. The script walks the whole protocol:
//! a cache-hitting duplicate batch, a non-default scheduler and machine,
//! a per-cell scheduling failure, an unparsable loop entry with span
//! diagnostics, an unknown verb, a multi-machine batch (one loop ×
//! three presets, hitting the cache for the machine it was already
//! scheduled on), `stats`, and `shutdown`. Timing fields
//! and contained-panic records are deliberately absent — they carry
//! wall-clock values and source line numbers, which would churn the
//! golden file.
//!
//! If an intentional change alters the protocol output, regenerate with
//! the command in the CI step and commit both files.

use hrms_repro::serve::Service;

#[test]
fn serve_smoke_output_matches_the_golden_file() {
    let requests = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/serve/requests.jsonl"
    ))
    .unwrap();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/serve_smoke.txt"
    ))
    .unwrap();
    let (actual, shutdown) = Service::default().process(&requests);
    assert!(shutdown, "the script ends with a shutdown request");
    assert_eq!(
        actual, golden,
        "serve output drifted from tests/golden/serve_smoke.txt; \
         regenerate the golden file if the change is intentional"
    );
}
