//! Lossless round-trip guarantees of the on-disk formats (docs/FORMATS.md).
//!
//! Every corpus the project ships — the 24 Livermore-modelled reference
//! loops, the paper's worked examples and 240 generated loops including the
//! recurrence-heavy and interleaved stress presets — must survive
//! `export → import` through both the `.loop` text format and the DOT
//! format with an identical structural fingerprint. On top of that, a
//! schedule computed from an imported loop must be byte-identical to one
//! computed from the original, for all seven schedulers: the formats are
//! only "lossless" if downstream results cannot tell the difference.

use hrms_repro::ddg::{
    ddg_fingerprint, dot, parse_loop, parse_loops, write_loop, write_loops, Ddg,
};
use hrms_repro::machine::{machine_fingerprint, parse_machine, presets, write_machine};
use hrms_repro::prelude::*;
use hrms_repro::registry::all_schedulers;
use hrms_repro::workloads::synthetic;

/// All loops of every shipped corpus, with 240 generated loops:
/// 120 from the default generator, 60 recurrence-heavy, 60 interleaved.
fn corpus() -> Vec<Ddg> {
    let mut loops = reference24::all();
    loops.push(motivating::figure1());
    loops.extend(LoopGenerator::with_seed(2024).generate(120));
    loops.extend(LoopGenerator::new(77, synthetic::recurrence_heavy_config(24)).generate(60));
    loops.extend(LoopGenerator::new(78, synthetic::interleaved_recurrence_config(30)).generate(60));
    loops
}

#[test]
fn corpus_is_as_large_as_documented() {
    assert_eq!(corpus().len(), 24 + 1 + 240);
}

#[test]
fn text_format_round_trips_every_corpus_loop() {
    for ddg in corpus() {
        let text = write_loop(&ddg);
        let back = parse_loop(&text)
            .unwrap_or_else(|e| panic!("loop `{}` does not re-parse: {e}\n{text}", ddg.name()));
        assert_eq!(
            ddg_fingerprint(&back),
            ddg_fingerprint(&ddg),
            "loop `{}` changed across a text round trip",
            ddg.name()
        );
        // The writer is deterministic: re-exporting the import is identical.
        assert_eq!(write_loop(&back), text, "loop `{}`", ddg.name());
    }
}

#[test]
fn dot_format_round_trips_every_corpus_loop() {
    for ddg in corpus() {
        let rendered = dot::to_dot_default(&ddg);
        let back = dot::from_dot(&rendered).unwrap_or_else(|e| {
            panic!("loop `{}` does not re-import: {e}\n{rendered}", ddg.name())
        });
        assert_eq!(
            ddg_fingerprint(&back),
            ddg_fingerprint(&ddg),
            "loop `{}` changed across a DOT round trip",
            ddg.name()
        );
    }
}

#[test]
fn multi_loop_files_round_trip_in_order() {
    let loops = reference24::all();
    let text = write_loops(&loops);
    let back = parse_loops(&text).unwrap();
    assert_eq!(back.len(), loops.len());
    for (a, b) in loops.iter().zip(&back) {
        assert_eq!(
            ddg_fingerprint(a),
            ddg_fingerprint(b),
            "loop `{}`",
            a.name()
        );
    }
}

#[test]
fn machine_presets_round_trip_with_identical_fingerprints() {
    for machine in presets::all() {
        let text = write_machine(&machine);
        let back = parse_machine(&text).unwrap();
        assert_eq!(back, machine, "preset `{}`", machine.name());
        assert_eq!(
            machine_fingerprint(&back),
            machine_fingerprint(&machine),
            "preset `{}`",
            machine.name()
        );
    }
}

/// The acceptance criterion of the formats work: schedules computed from
/// imported loops are byte-identical to schedules computed from the
/// originals, for every scheduler. Kernels are compared in their rendered
/// (user-visible) form.
#[test]
fn imported_loops_schedule_byte_identically_for_all_schedulers() {
    let machine = presets::govindarajan();
    for ddg in reference24::all() {
        let via_text = parse_loop(&write_loop(&ddg)).unwrap();
        let via_dot = dot::from_dot(&dot::to_dot_default(&ddg)).unwrap();
        for scheduler in all_schedulers() {
            let original = scheduler.schedule_loop(&ddg, &machine).unwrap();
            let reference = original.schedule.kernel().render(&ddg);
            for (label, imported) in [("text", &via_text), ("dot", &via_dot)] {
                let outcome = scheduler.schedule_loop(imported, &machine).unwrap();
                assert_eq!(
                    outcome.schedule,
                    original.schedule,
                    "scheduler `{}`, loop `{}`, via {label}",
                    scheduler.name(),
                    ddg.name()
                );
                assert_eq!(
                    outcome.schedule.kernel().render(imported),
                    reference,
                    "scheduler `{}`, loop `{}`, via {label}",
                    scheduler.name(),
                    ddg.name()
                );
            }
        }
    }
}

/// Generated loops keep scheduling identically after a text round trip
/// (HRMS only — the full 7-scheduler sweep above would be slow here).
#[test]
fn generated_loops_schedule_identically_after_import() {
    let machine = presets::perfect_club();
    let scheduler = HrmsScheduler::new();
    let loops = corpus();
    let imported: Vec<Ddg> = loops
        .iter()
        .map(|g| parse_loop(&write_loop(g)).unwrap())
        .collect();
    let engine = BatchEngine::new();
    let a = engine.schedule_batch(&scheduler, &loops, &machine);
    let b = engine.schedule_batch(&scheduler, &imported, &machine);
    for ((a, b), ddg) in a.iter().zip(&b).zip(&loops) {
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.schedule, b.schedule, "loop `{}`", ddg.name());
                assert_eq!(a.metrics, b.metrics, "loop `{}`", ddg.name());
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "loop `{}`", ddg.name());
            }
            (a, b) => panic!(
                "loop `{}`: original {:?} but imported {:?}",
                ddg.name(),
                a.as_ref().map(|_| ()),
                b.as_ref().map(|_| ())
            ),
        }
    }
}

/// Service result records are ordinary JSON that round-trips through the
/// service's own parser, and they carry exactly the same digests, cache
/// key and report fields as `hrms schedule --emit json` on the same input:
/// the record is the CLI report line with the `type`/`id`/`index` envelope
/// spliced on, nothing else.
#[test]
fn service_records_round_trip_and_match_the_cli_report() {
    use hrms_repro::serve::{json, Service};

    let machine = presets::govindarajan();
    let scheduler = HrmsScheduler::new();
    let loops: Vec<Ddg> = corpus()
        .into_iter()
        .filter(|g| scheduler.schedule_loop(g, &machine).is_ok())
        .take(60)
        .collect();
    let text = write_loops(&loops);

    let cli_out = hrms_repro::cli::run(
        &["schedule", "-", "--emit", "json"].map(String::from),
        &text,
    )
    .expect("every kept loop schedules");
    let cli_lines: Vec<&str> = cli_out.lines().collect();
    assert_eq!(cli_lines.len(), loops.len());

    let mut entry = String::new();
    hrms_repro::modsched::push_json_str(&mut entry, &text);
    let (serve_out, _) = Service::default().process(&format!(
        "{{\"req\":\"schedule\",\"id\":\"rt\",\"loops\":[{entry}]}}\n"
    ));
    let records: Vec<&str> = serve_out
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"result\""))
        .collect();
    assert_eq!(records.len(), loops.len());

    for ((record, cli_line), ddg) in records.iter().zip(&cli_lines).zip(&loops) {
        // The record is the CLI line plus the envelope, byte for byte.
        assert!(
            record.ends_with(&cli_line[1..]),
            "loop `{}`:\nservice: {record}\ncli:     {cli_line}",
            ddg.name()
        );
        // It parses as JSON, renders back to the identical bytes, and its
        // digest fields are the fingerprint functions' values verbatim.
        let value = json::parse(record)
            .unwrap_or_else(|e| panic!("loop `{}`: record is not JSON ({e})", ddg.name()));
        assert_eq!(value.to_json(), **record, "loop `{}`", ddg.name());
        let field = |key: &str| {
            value
                .get(key)
                .and_then(json::Value::as_str)
                .unwrap_or_else(|| panic!("loop `{}`: no `{key}`", ddg.name()))
                .to_string()
        };
        let loop_digest = ddg_fingerprint(ddg);
        let machine_digest = machine_fingerprint(&machine);
        assert_eq!(field("loop_digest"), format!("{loop_digest:016x}"));
        assert_eq!(field("machine_digest"), format!("{machine_digest:016x}"));
        assert_eq!(
            field("cache_key"),
            format!(
                "{:016x}",
                hrms_repro::ddg::cache_key(loop_digest, machine_digest, scheduler.name())
            )
        );
    }
}

/// The shipped example file stays parseable and structurally equal to the
/// reference inner-product loop shape it documents.
#[test]
fn shipped_example_loop_file_parses() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/loops/dotprod.loop"
    ))
    .unwrap();
    let loops = parse_loops(&text).unwrap();
    assert_eq!(loops.len(), 1);
    let ddg = &loops[0];
    assert_eq!(ddg.name(), "dotprod");
    assert_eq!(ddg.num_nodes(), 4);
    assert_eq!(ddg.num_edges(), 4);
    assert!(ddg.has_recurrence());
    // And it round-trips like everything else.
    let back = parse_loop(&write_loop(ddg)).unwrap();
    assert_eq!(ddg_fingerprint(&back), ddg_fingerprint(ddg));
}
