//! Differential tests of the dense placement path.
//!
//! The scheduling step now computes `Early_Start`/`Late_Start` over the
//! dense placement arcs of the shared per-loop analysis
//! (`hrms_ddg::LoopAnalysis`); the pre-refactor path — walking the `Ddg`
//! edge lists and resolving dependence latencies per edge — is kept callable
//! as `schedule_at_ii_reference`. This suite (the placement counterpart of
//! `tests/preorder_property.rs`) drives **both** paths over the 24-loop
//! reference suite and 240+ seeded generator loops — including
//! recurrence-heavy, multi-component and program-order configurations — at
//! every initiation interval from the MII up to the first success, and
//! asserts the produced schedules are byte-identical.

use hrms_repro::ddg::{Ddg, DdgBuilder, LoopAnalysis, NodeId};
use hrms_repro::hrms::{schedule_at_ii_reference, schedule_at_ii_with};
use hrms_repro::machine::{presets, Machine};
use hrms_repro::modsched::{validate_schedule, MiiInfo};
use hrms_repro::prelude::{HrmsScheduler, ModuloScheduler};
use hrms_repro::workloads::{reference24, GeneratorConfig, LoopGenerator};

/// Builds a deterministic generator loop (same shape as the pre-ordering
/// differential suite).
fn generated(seed: u64, size: usize, recurrence_probability: f64) -> Ddg {
    let config = GeneratorConfig {
        min_ops: size.max(3),
        mean_ops: size as f64,
        max_ops: size.max(3) + 6,
        recurrence_probability,
        ..GeneratorConfig::default()
    };
    LoopGenerator::new(seed, config).next_loop()
}

/// Concatenates two loops into one multi-component graph.
fn merged(a: &Ddg, b: &Ddg) -> Ddg {
    let mut bld = DdgBuilder::new(format!("{}+{}", a.name(), b.name()));
    for (half, g) in [a, b].into_iter().enumerate() {
        let ids: Vec<NodeId> = g
            .nodes()
            .map(|(_, n)| bld.node(format!("h{half}_{}", n.name()), n.kind(), n.latency()))
            .collect();
        for (_, e) in g.edges() {
            bld.edge(
                ids[e.source().index()],
                ids[e.target().index()],
                e.kind(),
                e.distance(),
            )
            .expect("merged ids are in range");
        }
    }
    bld.build().expect("merging two valid loops is valid")
}

/// Runs both placement paths on `g` with the given node order, comparing
/// the outcome at every II from the MII up to (and including) the first one
/// that schedules. Returns whether any II succeeded.
fn check_order(g: &Ddg, machine: &Machine, la: &LoopAnalysis<'_>, order: &[NodeId]) -> bool {
    let Ok(mii) = MiiInfo::compute(machine, la) else {
        return false; // invalid loop bodies are rejected identically upstream
    };
    // Generous cap: every reference/generated loop schedules well before it.
    let max_ii = mii.mii() + 256;
    for ii in mii.mii()..=max_ii {
        let dense = schedule_at_ii_with(g, machine, la.placement(), order, ii);
        let reference = schedule_at_ii_reference(g, machine, order, ii);
        assert_eq!(
            dense,
            reference,
            "`{}`: dense and reference placement diverge at II = {ii}",
            g.name()
        );
        if let Some(schedule) = dense {
            validate_schedule(g, machine, &schedule)
                .unwrap_or_else(|e| panic!("`{}`: invalid schedule at II = {ii}: {e}", g.name()));
            return true;
        }
    }
    panic!(
        "`{}`: no II in [{}, {max_ii}] schedules",
        g.name(),
        mii.mii()
    );
}

/// Checks `g` on both the HRMS pre-ordering and plain program order.
fn check(g: &Ddg, machine: &Machine) {
    let la = LoopAnalysis::analyze(g);
    let hrms_order = HrmsScheduler::new().pre_order(g).order;
    check_order(g, machine, &la, &hrms_order);
    let program_order: Vec<NodeId> = g.node_ids().collect();
    check_order(g, machine, &la, &program_order);
}

#[test]
fn reference24_schedules_identically_on_both_paths() {
    for g in reference24::all() {
        check(&g, &presets::govindarajan());
        check(&g, &presets::perfect_club());
    }
}

#[test]
fn generated_loops_schedule_identically_on_both_paths() {
    let m = presets::govindarajan();
    let mut checked = 0usize;
    for seed in 0..120u64 {
        let size = 4 + (seed as usize * 7) % 44;
        // Recurrence-heavy and recurrence-free variants of every seed.
        for rec_prob in [0.0, 0.8] {
            let g = generated(seed, size, rec_prob);
            check(&g, &m);
            checked += 1;
        }
    }
    assert!(checked >= 240, "the suite must cover at least 240 loops");
}

#[test]
fn multi_component_loops_schedule_identically_on_both_paths() {
    let m = presets::perfect_club();
    for seed in 0..10u64 {
        let a = generated(seed, 6 + (seed as usize % 20), 0.7);
        let b = generated(seed + 1000, 4 + (seed as usize % 14), 0.0);
        check(&merged(&a, &b), &m);
    }
}

#[test]
fn full_scheduler_matches_a_reference_driven_escalation() {
    // End-to-end guard: the schedule the (dense) HrmsScheduler returns is
    // the one a reference-path II escalation over the same pre-ordering
    // would produce, for every reference loop that schedules without the
    // robustness fallback (all 24 do).
    let m = presets::govindarajan();
    for g in reference24::all() {
        let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        let order = HrmsScheduler::new().pre_order(&g).order;
        let mii = MiiInfo::compute(&m, &LoopAnalysis::analyze(&g)).unwrap();
        let mut reference = None;
        for ii in mii.mii()..=outcome.metrics.ii {
            reference = schedule_at_ii_reference(&g, &m, &order, ii);
            if reference.is_some() {
                break;
            }
        }
        assert_eq!(
            reference.as_ref(),
            Some(&outcome.schedule),
            "`{}`: end-to-end schedule differs from the reference path",
            g.name()
        );
    }
}
