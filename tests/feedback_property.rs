//! Property tier for the feedback-guided iterative rescheduler.
//!
//! Every property is checked over three corpora — the 24-loop reference
//! suite, recurrence-heavy bodies, and the register-pressure suite whose
//! schedules exceed the paper machines' 32-register files — and every
//! schedule the rescheduler accepts must pass the independent certifier:
//!
//! * the fixpoint terminates within the configured iteration budget;
//! * the selected attempt is never lexicographically worse than the
//!   unperturbed one-shot baseline on `(spills, II, MaxLive)`;
//! * the whole run is deterministic (schedules and trace bytes);
//! * on the register-pressure suite the feedback loop strictly improves
//!   the spill count or the achieved II on a meaningful fraction of the
//!   degraded loops, with zero regressions anywhere.

use hrms_repro::ddg::Ddg;
use hrms_repro::machine::{presets, Machine};
use hrms_repro::modsched::{FeedbackConfig, FeedbackTrace, ModuloScheduler};
use hrms_repro::registry::{scheduler_by_slug, wrap_feedback, BoxedScheduler};
use hrms_repro::verify::certify;
use hrms_repro::workloads::synthetic::{recurrence_heavy_config, register_pressure_suite};
use hrms_repro::workloads::{reference24, LoopGenerator};

/// The feedback-wrapped HRMS scheduler exactly as the registry builds it
/// for the `feedback:hrms` slug (spill evaluator wired in).
fn feedback_hrms(config: FeedbackConfig) -> BoxedScheduler {
    wrap_feedback(
        scheduler_by_slug("hrms").expect("hrms is registered"),
        config,
    )
}

/// Recurrence-heavy bodies small enough for a test tier (the named suite's
/// 500–2000-op loops belong to the benchmarks).
fn recurrence_heavy_corpus() -> Vec<Ddg> {
    [40usize, 80, 120]
        .iter()
        .map(|&size| {
            LoopGenerator::new(0xFEED ^ size as u64, recurrence_heavy_config(size)).next_loop()
        })
        .collect()
}

/// Runs one loop through the rescheduler and checks every per-loop
/// invariant of the tier, returning the trace for corpus-level statistics.
fn check_one(
    scheduler: &dyn ModuloScheduler,
    ddg: &Ddg,
    machine: &Machine,
    config: &FeedbackConfig,
) -> FeedbackTrace {
    let outcome = scheduler
        .schedule_loop(ddg, machine)
        .unwrap_or_else(|e| panic!("`{}` failed: {e}", ddg.name()));
    let trace = outcome.feedback.clone().expect("feedback trace attached");

    // Termination: the fixpoint respects the iteration budget.
    assert!(
        trace.iterations.len() <= config.max_iterations.max(1),
        "`{}`: {} attempts exceed the budget of {}",
        ddg.name(),
        trace.iterations.len(),
        config.max_iterations
    );

    // Never worse than one-shot: attempt 0 is the unperturbed baseline.
    let baseline = &trace.iterations[0];
    assert_eq!(baseline.perturbation, "baseline", "`{}`", ddg.name());
    assert!(
        trace.best().score() <= baseline.score(),
        "`{}`: selected {:?} is worse than the one-shot {:?}",
        ddg.name(),
        trace.best().score(),
        baseline.score()
    );

    // The returned outcome is the selected attempt's schedule of the
    // *original* loop, and it certifies independently.
    assert_eq!(outcome.metrics.ii, trace.best().ii, "`{}`", ddg.name());
    let cert = certify(ddg, machine, &outcome.schedule);
    assert!(
        cert.passed(),
        "`{}`: certificate failed: {:?}",
        ddg.name(),
        cert.diagnostics
    );

    // Determinism: a second run reproduces the schedule and the trace bytes.
    let again = scheduler.schedule_loop(ddg, machine).unwrap();
    assert_eq!(outcome.schedule, again.schedule, "`{}`", ddg.name());
    assert_eq!(
        trace.to_json(),
        again.feedback.expect("trace attached").to_json(),
        "`{}`: trace bytes differ between runs",
        ddg.name()
    );

    trace
}

#[test]
fn feedback_terminates_never_degrades_and_certifies_on_the_reference_suite() {
    let config = FeedbackConfig::default();
    let scheduler = feedback_hrms(config);
    let machine = presets::perfect_club();
    for ddg in reference24::all() {
        check_one(scheduler.as_ref(), &ddg, &machine, &config);
    }
}

#[test]
fn feedback_ii_signal_drives_recurrence_heavy_loops_without_a_budget() {
    // No register budget: the II-vs-MII signal alone drives the loop, the
    // recurrence-group extraction path (cycle ratios) is the one exercised.
    let config = FeedbackConfig {
        budget: None,
        ..FeedbackConfig::default()
    };
    let scheduler = feedback_hrms(config);
    let machine = presets::govindarajan();
    for ddg in recurrence_heavy_corpus() {
        let trace = check_one(scheduler.as_ref(), &ddg, &machine, &config);
        // Without a budget the spill signal must stay silent.
        assert!(
            trace.iterations.iter().all(|it| it.spills == 0),
            "`{}`: spill signal fired with no budget",
            ddg.name()
        );
    }
}

#[test]
fn feedback_improves_a_quarter_of_the_degraded_register_pressure_loops() {
    let config = FeedbackConfig::default();
    let scheduler = feedback_hrms(config);
    let machine = presets::perfect_club();

    let mut degraded = 0usize;
    let mut improved = 0usize;
    for ddg in register_pressure_suite() {
        let trace = check_one(scheduler.as_ref(), &ddg, &machine, &config);
        let baseline = &trace.iterations[0];
        let best = trace.best();
        // Zero regressions anywhere (stronger than the lexicographic bound:
        // no component of the tuple the run optimises may regress without a
        // strict win earlier in the tuple — already implied by score(), so
        // assert the implied per-loop bound explicitly).
        assert!(best.score() <= baseline.score(), "`{}`", ddg.name());
        let was_degraded =
            baseline.spills > 0 || baseline.ii > trace_mii(&trace) || baseline.max_live > 32;
        if was_degraded {
            degraded += 1;
            if best.spills < baseline.spills || best.ii < baseline.ii {
                improved += 1;
            }
        }
    }
    assert!(
        degraded > 0,
        "the register-pressure suite must contain degraded one-shot schedules"
    );
    assert!(
        improved * 4 >= degraded,
        "feedback improved spills or II on only {improved}/{degraded} degraded loops"
    );
}

/// The MII is not recorded in the trace; recover it as the smallest II any
/// attempt achieved bounded below by the selected attempt's II (exact
/// enough for the degradation predicate: a baseline at an II above the
/// eventual best is degraded by definition).
fn trace_mii(trace: &FeedbackTrace) -> u32 {
    trace.iterations.iter().map(|it| it.ii).min().unwrap_or(0)
}
