//! The service cache contract under a duplicate-heavy soak load.
//!
//! Over a thousand loop entries drawn from thirty distinct loops are
//! pushed through the service, and the content-addressed cache's whole
//! contract is asserted at once:
//!
//! * each distinct `cache_key` is *scheduled* exactly once — every other
//!   occurrence is a counted cache hit;
//! * the response stream is in input order, one record per entry;
//! * the bytes are exactly what a cache-disabled cold run produces, and a
//!   warm replay reproduces them again;
//! * every cached record matches a freshly computed, independently
//!   certified schedule of its loop.

use hrms_repro::modsched::{report_line, ModuloScheduler, ReportOptions};
use hrms_repro::prelude::*;
use hrms_repro::serve::{ServeConfig, Service};

/// The thirty distinct loops of the soak corpus: the 24-loop reference
/// suite, the paper's five motivating examples, and one synthetic chain.
fn distinct_corpus() -> Vec<Ddg> {
    let mut loops = hrms_repro::workloads::reference24::all();
    loops.extend(hrms_repro::workloads::motivating::all());
    loops.push(hrms_repro::ddg::chain("soak_chain", 6, OpKind::FpMul, 2));
    assert_eq!(loops.len(), 30, "the soak corpus is thirty distinct loops");
    loops
}

/// ≥1000 entries over the corpus in a fixed pseudo-shuffled order; the
/// stride is coprime to 30, so every distinct loop appears early and
/// often.
fn soak_indices(total: usize) -> Vec<usize> {
    (0..total).map(|i| (i * 7 + 3) % 30).collect()
}

fn quoted(text: &str) -> String {
    let mut out = String::new();
    hrms_repro::modsched::push_json_str(&mut out, text);
    out
}

/// The soak load as three schedule requests of 340 entries each, so the
/// cache is exercised both within one batch and across requests.
fn soak_requests(sources: &[String], indices: &[usize]) -> Vec<String> {
    indices
        .chunks(340)
        .enumerate()
        .map(|(r, chunk)| {
            let entries: Vec<String> = chunk.iter().map(|&i| quoted(&sources[i])).collect();
            format!(
                "{{\"req\":\"schedule\",\"id\":{r},\"loops\":[{}]}}\n",
                entries.join(",")
            )
        })
        .collect()
}

#[test]
fn a_thousand_entry_soak_schedules_each_distinct_loop_once() {
    let corpus = distinct_corpus();
    let machine = presets::govindarajan();
    let sources: Vec<String> = corpus
        .iter()
        .map(|l| hrms_repro::ddg::textfmt::write_loops(std::slice::from_ref(l)))
        .collect();
    let indices = soak_indices(1020);
    let input = soak_requests(&sources, &indices).concat();

    let mut warm = Service::default();
    let (warm_out, _) = warm.process(&input);

    // One result per entry, one done per request, all in input order.
    let lines: Vec<&str> = warm_out.lines().collect();
    assert_eq!(lines.len(), 1020 + 3);
    let mut cursor = 0usize;
    for line in &lines {
        if line.starts_with("{\"type\":\"done\"") {
            continue;
        }
        let expected_name = corpus[indices[cursor]].name();
        let expected_index = cursor % 340;
        assert!(
            line.starts_with(&format!(
                "{{\"type\":\"result\",\"id\":{},\"index\":{expected_index},\"loop\":\"{expected_name}\"",
                cursor / 340
            )),
            "entry {cursor} out of order: {line}"
        );
        assert!(
            !line.contains("\"error\""),
            "soak cells all schedule: {line}"
        );
        cursor += 1;
    }
    assert_eq!(cursor, 1020);

    // The cache contract: 30 distinct keys were real lookups that missed
    // once each and were scheduled exactly once; all 990 other entries
    // were counted hits. Nothing was evicted at the default capacity.
    let stats = warm.cache_stats();
    assert_eq!(stats.misses, 30, "each distinct cache_key scheduled once");
    assert_eq!(stats.hits, 1020 - 30, "every duplicate entry is a hit");
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.entries, 30);

    // Byte-identity with a pure cold run: a service with the cache
    // disabled schedules all 1020 cells from scratch and must produce the
    // same stream.
    let mut cold = Service::new(&ServeConfig {
        cache: false,
        ..ServeConfig::default()
    });
    let (cold_out, _) = cold.process(&input);
    assert_eq!(warm_out, cold_out, "cached responses match the cold bytes");
    let cold_stats = cold.cache_stats();
    assert_eq!((cold_stats.hits, cold_stats.misses), (0, 0));

    // And a warm replay serves everything from cache, identically.
    let (replay_out, _) = warm.process(&input);
    assert_eq!(warm_out, replay_out, "warm replay is byte-identical");
    let stats = warm.cache_stats();
    assert_eq!(stats.misses, 30, "the replay scheduled nothing new");
    assert_eq!(stats.hits, 2 * 1020 - 30);

    // Every cached record is exactly the report of a schedule that the
    // independent certifier accepts: recompute each distinct loop's
    // schedule in-process, certify it, and check the service's record for
    // that loop carries the same rendered body.
    let scheduler = HrmsScheduler::new();
    for (ddg, source_index) in corpus.iter().zip(0usize..) {
        let outcome = scheduler
            .schedule_loop(ddg, &machine)
            .unwrap_or_else(|e| panic!("`{}` schedules: {e}", ddg.name()));
        let cert = certify(ddg, &machine, &outcome.schedule);
        assert!(
            cert.passed(),
            "`{}` certifies: {:?}",
            ddg.name(),
            cert.diagnostics
        );
        let body = report_line(
            ddg,
            &machine,
            scheduler.name(),
            &outcome,
            ReportOptions { timing: false },
        );
        let entry = indices
            .iter()
            .position(|&i| i == source_index)
            .expect("every distinct loop appears in the soak");
        let line = lines
            .iter()
            .filter(|l| l.starts_with("{\"type\":\"result\""))
            .nth(entry)
            .unwrap();
        assert!(
            line.ends_with(&body[1..]),
            "`{}`: service record diverges from the certified report\n\
             record: {line}\nreport: {body}",
            ddg.name()
        );
    }
}
