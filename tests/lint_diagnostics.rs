//! Integration tests for the `hrms-verify` static-analysis layer.
//!
//! Three layers of coverage:
//!
//! * the malformed-input corpus under `tests/fixtures/malformed/` is
//!   linted through the CLI and the full rendered output (codes, spans,
//!   excerpts, notes) is diffed byte-for-byte against
//!   `tests/golden/lint_corpus.txt`;
//! * every shipped example input lints clean (`hrms lint` exit 0, zero
//!   diagnostics) — the lint is allowed to reject user typos, never our
//!   own artefacts;
//! * every workload-generator preset lints clean, and its loops certify
//!   under all seven schedulers — the certifier is the referee for the
//!   whole scheduler zoo, so a disagreement here is a bug in a scheduler,
//!   the certifier, or both.

use hrms_repro::cli::run;
use hrms_repro::prelude::*;
use hrms_repro::registry::{all_schedulers, SCHEDULER_SLUGS};
use hrms_repro::verify::{certify, lint_ddg};
use hrms_repro::workloads::synthetic;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn manifest_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Lints `text` through the CLI exactly as the golden corpus was
/// generated: stdin input, text format, stderr-style rendering.
fn lint_stdin(text: &str) -> Result<String, String> {
    match run(&args(&["lint", "-"]), text) {
        Ok(out) => Ok(out),
        Err(e) => {
            assert_eq!(e.code, 1, "lint data errors exit 1: {}", e.message);
            Err(e.message)
        }
    }
}

#[test]
fn malformed_corpus_matches_the_golden_output() {
    let dir = manifest_path("tests/fixtures/malformed");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(
        names.len() >= 12,
        "the malformed corpus holds at least 12 bad inputs, found {}",
        names.len()
    );

    let mut actual = String::new();
    for name in &names {
        let text = std::fs::read_to_string(format!("{dir}/{name}")).unwrap();
        actual.push_str(&format!("== {name}\n"));
        match lint_stdin(&text) {
            Ok(_) => panic!("malformed fixture `{name}` linted clean"),
            Err(rendered) => actual.push_str(&rendered),
        }
    }

    let golden = std::fs::read_to_string(manifest_path("tests/golden/lint_corpus.txt")).unwrap();
    assert_eq!(
        actual, golden,
        "lint output drifted from tests/golden/lint_corpus.txt; \
         regenerate it with the loop in .github/workflows/ci.yml if intentional"
    );
}

#[test]
fn every_fixture_reports_its_namesake_code() {
    // The two-digit prefix encodes the scenario; the first reported code
    // must match the lint the fixture was written to trigger.
    let expected = [
        ("01", "L001"),
        ("02", "L001"),
        ("03", "L002"),
        ("04", "L003"),
        ("05", "L004"),
        ("06", "L005"),
        ("07", "L006"),
        ("08", "L006"),
        ("09", "L001"),
        ("10", "L003"),
        ("11", "M001"),
        ("12", "M002"),
        ("13", "L002"),
        ("14", "M003"),
        ("15", "M004"),
    ];
    let dir = manifest_path("tests/fixtures/malformed");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        let prefix = &name[..2];
        let code = expected
            .iter()
            .find(|(p, _)| *p == prefix)
            .unwrap_or_else(|| panic!("fixture `{name}` missing from the expectation table"))
            .1;
        let text = std::fs::read_to_string(format!("{dir}/{name}")).unwrap();
        let rendered = lint_stdin(&text).expect_err(&name);
        let first = rendered.lines().next().unwrap();
        assert!(
            first.contains(&format!("[{code}]")),
            "fixture `{name}` first finding is {first}, expected {code}"
        );
    }
}

#[test]
fn shipped_examples_lint_clean() {
    let dir = manifest_path("examples/loops");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let out = lint_stdin(&text).unwrap_or_else(|rendered| {
            panic!("shipped example {path:?} has findings:\n{rendered}")
        });
        assert!(out.contains("no problems found"));
        checked += 1;
    }
    assert!(checked >= 1);
    // The machine presets also lint clean through the CLI path.
    for preset in ["general-purpose", "govindarajan", "perfect-club"] {
        let rendered = run(&args(&["machine", preset]), "").unwrap();
        lint_stdin(&rendered).unwrap_or_else(|r| panic!("preset `{preset}` has findings:\n{r}"));
    }
}

/// Every generator preset produces loops that lint clean — with the
/// machine the generator's latencies target, so `L007` stays silent —
/// and that certify under all seven schedulers.
#[test]
fn generator_presets_lint_clean_and_certify_under_all_schedulers() {
    let machine = presets::perfect_club();
    let presets_under_test: Vec<(&str, Vec<Ddg>)> = vec![
        (
            "suite",
            LoopGenerator::new(7, synthetic::suite_config()).generate(8),
        ),
        (
            "stress",
            LoopGenerator::new(11, synthetic::stress_config(24)).generate(4),
        ),
        (
            "recurrence_heavy",
            LoopGenerator::new(13, synthetic::recurrence_heavy_config(20)).generate(4),
        ),
        (
            "interleaved_recurrences",
            LoopGenerator::new(17, synthetic::interleaved_recurrence_config(24)).generate(4),
        ),
    ];
    let schedulers = all_schedulers();
    assert_eq!(schedulers.len(), SCHEDULER_SLUGS.len());

    for (preset, loops) in &presets_under_test {
        assert!(!loops.is_empty());
        for ddg in loops {
            let diags = lint_ddg(ddg, None, Some(&machine));
            assert!(
                diags.is_empty(),
                "preset `{preset}` loop `{}` has findings: {:?}",
                ddg.name(),
                diags
            );
            for scheduler in &schedulers {
                // The exhaustive scheduler is exercised only on small
                // loops to keep the test fast (same cut as
                // scheduler_validity.rs).
                if scheduler.name().starts_with("B&B") && ddg.num_nodes() > 12 {
                    continue;
                }
                let outcome = scheduler.schedule_loop(ddg, &machine).unwrap_or_else(|e| {
                    panic!(
                        "{} failed on `{preset}` loop `{}`: {e}",
                        scheduler.name(),
                        ddg.name()
                    )
                });
                let cert = certify(ddg, &machine, &outcome.schedule);
                assert!(
                    cert.passed(),
                    "{} on `{preset}` loop `{}` fails certification: {:#?}",
                    scheduler.name(),
                    ddg.name(),
                    cert.checks
                );
            }
        }
    }
}

/// The acceptance pin: all 24 reference loops certify under every
/// scheduler on both paper machines.
#[test]
fn reference24_certifies_under_all_schedulers() {
    let machines = [presets::govindarajan(), presets::perfect_club()];
    let schedulers = all_schedulers();
    for ddg in reference24::all() {
        for machine in &machines {
            for scheduler in &schedulers {
                if scheduler.name().starts_with("B&B") && ddg.num_nodes() > 12 {
                    continue;
                }
                let outcome = scheduler.schedule_loop(&ddg, machine).unwrap_or_else(|e| {
                    panic!("{} failed on `{}`: {e}", scheduler.name(), ddg.name())
                });
                let cert = certify(&ddg, machine, &outcome.schedule);
                assert!(
                    cert.passed(),
                    "{} on `{}` x {} fails certification: {:#?}",
                    scheduler.name(),
                    ddg.name(),
                    machine.name(),
                    cert.checks
                );
                // The certificate's re-derived MII agrees with the
                // scheduler's own metrics.
                assert_eq!(cert.mii, Some(outcome.metrics.mii));
                assert_eq!(cert.max_live, outcome.metrics.max_live);
            }
        }
    }
}
