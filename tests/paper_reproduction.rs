//! Integration tests that pin the reproduction to the paper's own worked
//! examples and headline claims.

use hrms_repro::prelude::*;

/// Section 3.1: the pre-ordering of the Figure 7 graph is
/// `{A, C, G, H, D, J, I, E, B, F}`.
#[test]
fn figure7_preordering_matches_the_paper() {
    let ddg = motivating::figure7();
    let order = hrms_repro::hrms::pre_order(&hrms_repro::ddg::LoopAnalysis::analyze(&ddg)).order;
    let names: Vec<&str> = order.iter().map(|&n| ddg.node(n).name()).collect();
    assert_eq!(
        names,
        vec!["A", "C", "G", "H", "D", "J", "I", "E", "B", "F"]
    );
}

/// Section 2.1: on the motivating example HRMS needs 6 registers while the
/// unidirectional schedulers need more (8 for top-down, 7 for bottom-up in
/// the paper).
#[test]
fn motivating_example_register_counts() {
    let ddg = motivating::figure1();
    let machine = presets::general_purpose();

    let hrms = HrmsScheduler::new().schedule_loop(&ddg, &machine).unwrap();
    let topdown = TopDownScheduler::new()
        .schedule_loop(&ddg, &machine)
        .unwrap();
    let bottomup = BottomUpScheduler::new()
        .schedule_loop(&ddg, &machine)
        .unwrap();

    assert_eq!(hrms.metrics.ii, 2);
    assert_eq!(topdown.metrics.ii, 2);
    assert_eq!(bottomup.metrics.ii, 2);

    assert_eq!(hrms.metrics.max_live, 6, "paper: HRMS needs 6 registers");
    assert!(topdown.metrics.max_live > hrms.metrics.max_live);
    assert!(bottomup.metrics.max_live >= hrms.metrics.max_live);
}

/// Section 2.1's exact HRMS placement: A@0, B@2, C@4, D@4, E@5, F@7, G@9.
#[test]
fn motivating_example_hrms_cycles() {
    let ddg = motivating::figure1();
    let machine = presets::general_purpose();
    let outcome = HrmsScheduler::new().schedule_loop(&ddg, &machine).unwrap();
    let cycle = |name: &str| outcome.schedule.cycle(ddg.node_by_name(name).unwrap());
    assert_eq!(
        ["A", "B", "C", "D", "E", "F", "G"].map(cycle),
        [0, 2, 4, 4, 5, 7, 9]
    );
}

/// Table 1/2 shape on the reference suite: HRMS matches the optimal
/// scheduler's II on every loop the branch-and-bound search solves, never
/// needs more buffers than the register-insensitive FRLC at equal II, and is
/// orders of magnitude faster than the exhaustive search overall (Table 3).
#[test]
fn reference_suite_shapes() {
    let machine = presets::govindarajan();
    let hrms = HrmsScheduler::new();
    let frlc = FrlcScheduler::new();

    let mut hrms_total_buffers = 0u64;
    let mut frlc_total_buffers = 0u64;
    for ddg in reference24::all() {
        let h = hrms.schedule_loop(&ddg, &machine).unwrap();
        let f = frlc.schedule_loop(&ddg, &machine).unwrap();
        validate_schedule(&ddg, &machine, &h.schedule).unwrap();
        validate_schedule(&ddg, &machine, &f.schedule).unwrap();
        assert!(h.metrics.ii >= h.metrics.mii);
        assert!(
            h.metrics.ii <= f.metrics.ii,
            "{}: HRMS II {} vs FRLC II {}",
            ddg.name(),
            h.metrics.ii,
            f.metrics.ii
        );
        hrms_total_buffers += h.metrics.buffers;
        frlc_total_buffers += f.metrics.buffers;
    }
    assert!(
        hrms_total_buffers <= frlc_total_buffers,
        "HRMS must not need more buffers than FRLC overall ({hrms_total_buffers} vs {frlc_total_buffers})"
    );
}

/// HRMS achieves the minimum II on (nearly) every loop of the reference
/// suite — the paper reports 97.5% over the Perfect Club; the reference
/// suite is small enough to demand 100%.
#[test]
fn hrms_achieves_mii_on_the_reference_suite() {
    let machine = presets::govindarajan();
    let hrms = HrmsScheduler::new();
    for ddg in reference24::all() {
        let outcome = hrms.schedule_loop(&ddg, &machine).unwrap();
        assert!(
            outcome.metrics.ii_is_optimal(),
            "{} scheduled at II {} > MII {}",
            ddg.name(),
            outcome.metrics.ii,
            outcome.metrics.mii
        );
    }
}

/// The branch-and-bound (SPILP stand-in) scheduler never finds a schedule
/// with more buffers than HRMS on small loops, and HRMS stays close to it —
/// the paper's "similar results to SPILP" claim.
#[test]
fn hrms_is_close_to_the_optimal_scheduler() {
    let machine = presets::govindarajan();
    let hrms = HrmsScheduler::new();
    let optimal = BranchAndBoundScheduler {
        config: SchedulerConfig {
            budget_per_ii: 50_000,
            ..SchedulerConfig::default()
        },
    };
    // The smallest eight loops keep the exhaustive search fast.
    let mut loops = reference24::all();
    loops.sort_by_key(|g| g.num_nodes());
    for ddg in loops.into_iter().take(8) {
        let h = hrms.schedule_loop(&ddg, &machine).unwrap();
        let o = optimal.schedule_loop(&ddg, &machine).unwrap();
        assert!(o.metrics.buffers <= h.metrics.buffers, "{}", ddg.name());
        assert!(
            h.metrics.buffers <= o.metrics.buffers + 2,
            "{}: HRMS {} buffers vs optimal {}",
            ddg.name(),
            h.metrics.buffers,
            o.metrics.buffers
        );
        assert_eq!(h.metrics.ii, o.metrics.ii, "{}", ddg.name());
    }
}

/// Figure 11's headline: over a loop suite, HRMS needs fewer registers than
/// the Top-Down scheduler on average (the paper reports 87%).
#[test]
fn hrms_needs_fewer_registers_than_topdown_on_average() {
    let machine = presets::perfect_club();
    let loops = synthetic::perfect_club_like_sized(60);
    let hrms = HrmsScheduler::new();
    let topdown = TopDownScheduler::new();
    let mut hrms_regs = 0u64;
    let mut td_regs = 0u64;
    for ddg in &loops {
        hrms_regs += hrms.schedule_loop(ddg, &machine).unwrap().metrics.max_live;
        td_regs += topdown
            .schedule_loop(ddg, &machine)
            .unwrap()
            .metrics
            .max_live;
    }
    assert!(
        hrms_regs < td_regs,
        "HRMS should need fewer registers in total ({hrms_regs} vs {td_regs})"
    );
}
