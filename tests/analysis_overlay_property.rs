//! Property suite for the core/overlay analysis split: scheduling a loop
//! through a shared [`LoopCore`] must be indistinguishable — byte for
//! byte — from scheduling it from scratch, on every machine preset, and
//! the machine-independent analysis must run exactly once per loop no
//! matter how many machines share the core.
//!
//! The suite sweeps all 24 reference loops plus a band of generated
//! loops, across every preset and both the HRMS scheduler and a baseline
//! (whose escalation path threads the core through `escalate_ii_with_core`
//! rather than the HRMS scheduler's own loop), so both core-threading
//! paths are pinned.

use std::sync::Arc;

use hrms_repro::baselines::SlackScheduler;
use hrms_repro::ddg::{Ddg, LoopAnalysis, LoopCore};
use hrms_repro::hrms::HrmsScheduler;
use hrms_repro::machine::presets;
use hrms_repro::modsched::{report_line, ModuloScheduler, ReportOptions};
use hrms_repro::workloads::{reference24, GeneratorConfig, LoopGenerator};

/// The loops under test: every reference loop plus generated ones spanning
/// sparse and recurrence-heavy shapes.
fn suite() -> Vec<Ddg> {
    let mut loops = reference24::all();
    let config = GeneratorConfig {
        min_ops: 8,
        mean_ops: 24.0,
        max_ops: 48,
        ..GeneratorConfig::default()
    };
    let mut generator = LoopGenerator::new(7, config);
    for _ in 0..6 {
        loops.push(generator.next_loop());
    }
    loops
}

#[test]
fn shared_core_schedules_are_byte_identical_to_from_scratch_on_every_preset() {
    let schedulers: Vec<Box<dyn ModuloScheduler>> = vec![
        Box::new(HrmsScheduler::new()),
        Box::new(SlackScheduler::new()),
    ];
    let options = ReportOptions { timing: false };
    for ddg in suite() {
        for scheduler in &schedulers {
            // One core serves every machine this loop is scheduled on.
            let core = Arc::new(LoopCore::new());
            for machine in presets::all() {
                let fresh = scheduler.schedule_loop(&ddg, &machine);
                let shared = scheduler.schedule_loop_with_core(&ddg, &machine, &core);
                match (fresh, shared) {
                    (Ok(fresh), Ok(shared)) => {
                        assert_eq!(
                            fresh.schedule,
                            shared.schedule,
                            "schedule drifted: loop `{}` x {} x {}",
                            ddg.name(),
                            scheduler.name(),
                            machine.name()
                        );
                        assert_eq!(
                            report_line(&ddg, &machine, scheduler.name(), &fresh, options),
                            report_line(&ddg, &machine, scheduler.name(), &shared, options),
                            "report bytes drifted: loop `{}` x {} x {}",
                            ddg.name(),
                            scheduler.name(),
                            machine.name()
                        );
                    }
                    (Err(fresh), Err(shared)) => {
                        assert_eq!(fresh.to_string(), shared.to_string());
                    }
                    (fresh, shared) => panic!(
                        "outcome kind drifted on loop `{}` x {} x {}: fresh {fresh:?} vs shared \
                         {shared:?}",
                        ddg.name(),
                        scheduler.name(),
                        machine.name()
                    ),
                }
            }
        }
    }
}

#[test]
fn overlay_analysis_fingerprints_match_from_scratch_analysis() {
    for ddg in suite() {
        let fresh = LoopAnalysis::analyze(&ddg);
        let core = Arc::new(LoopCore::new());
        let shared = LoopAnalysis::with_core(&ddg, Arc::clone(&core));
        assert_eq!(fresh.fingerprint(), shared.fingerprint(), "{}", ddg.name());
        // A second overlay on the already-populated core still agrees.
        let again = LoopAnalysis::with_core(&ddg, core);
        assert_eq!(fresh.fingerprint(), again.fingerprint(), "{}", ddg.name());
    }
}

// The differential verify features run extra analyses (legacy pre-order
// cross-checks, circuit-enumeration oracles) that move the instrumentation
// counters, so the exact once-per-loop pin only holds in the default build.
#[cfg(not(any(feature = "verify-dense", feature = "verify-recurrence")))]
#[test]
fn the_machine_independent_analysis_runs_once_per_loop_across_all_presets() {
    use hrms_repro::ddg::instrument;

    let scheduler = HrmsScheduler::new();
    let loops = suite();
    let machines = presets::all();
    instrument::reset();
    for ddg in &loops {
        let core = Arc::new(LoopCore::new());
        for machine in &machines {
            let _ = scheduler.schedule_loop_with_core(ddg, machine, &core);
        }
    }
    assert_eq!(
        instrument::tarjan_runs(),
        loops.len(),
        "one Tarjan SCC pass per loop, shared across {} machines",
        machines.len()
    );
    assert_eq!(
        instrument::cycle_ratio_runs(),
        loops.len(),
        "one lambda-search (cycle-ratio) pass per loop, shared across {} machines",
        machines.len()
    );
}
